"""Content-addressed on-disk result store with pluggable backends.

Every campaign job result is stored under a key derived from the job's
full descriptor — application, mode, operating point, node id, seeds,
repetition and counter set — so a result is reused if and only if it
would be bit-identical to a fresh simulation.  Records are dicts ::

    {"key": "<blake2b-128 hex>", "store_version": N,
     "job": {...descriptor...}, "result": {...}}

serialised as sorted-key JSON by whichever backend holds them (see
:mod:`repro.campaign.backends`): the original append-only JSON-lines
file, an indexed SQLite database (WAL mode, concurrent multi-process
writers), or a directory of key-prefix-sharded segment files with
sidecar offset indexes.  The backend is auto-detected from the path
(``.jsonl`` file / ``.sqlite`` file / directory); all backends are
record-for-record equivalent, and :func:`migrate_store` converts
between them.

JSON serialises floats via ``repr`` (shortest round-trip), so payloads
read back from a warm store compare equal to freshly simulated ones.

:data:`STORE_VERSION` is mixed into every key; bump it whenever the
simulator physics or the result payload layout changes, which atomically
invalidates all previously persisted results.  Every record additionally
carries the version it was written under, so a record that *does* match
a requested key but was produced under a different schema (a payload
layout change that forgot the bump, or a hand-migrated store) surfaces a
clear :class:`~repro.errors.CampaignError` instead of a downstream
``KeyError`` in whatever consumer first indexes the stale payload.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Iterator

from repro.campaign.backends import (
    BACKEND_KINDS,
    STORE_VERSION,
    StoreBackend,
    open_backend,
)
from repro.errors import CampaignError

__all__ = [
    "STORE_VERSION",
    "BACKEND_KINDS",
    "ResultStore",
    "job_key",
    "migrate_store",
]


def job_key(descriptor: dict[str, Any]) -> str:
    """Content hash of a job descriptor (stable across processes/runs)."""
    payload = json.dumps(
        {"store_version": STORE_VERSION, **descriptor}, sort_keys=True
    )
    return hashlib.blake2b(payload.encode("utf-8"), digest_size=16).hexdigest()


class ResultStore:
    """Persistent (or, with ``path=None``, in-memory) job-result cache.

    The backend is auto-detected from the path unless named explicitly
    (``backend="jsonl" | "sqlite" | "segment"``).  The JSONL backend
    keeps the historical behaviour — eagerly loaded, appended on every
    :meth:`put` — while the indexed backends open lazily and look keys
    up on demand.  Unparseable bytes (a truncated tail after a crash, a
    torn WAL, a garbled index sidecar) load as misses, never as
    crashes; the next ``put`` of an affected key rewrites the record.

    The store is a context manager; ``with ResultStore(p) as store:``
    guarantees indexes and handles are flushed on the way out.
    """

    def __init__(
        self, path: str | Path | None = None, *, backend: str | None = None
    ):
        self.path = Path(path) if path is not None else None
        self._backend: StoreBackend = open_backend(self.path, backend)

    # ------------------------------------------------------------------
    @property
    def backend(self) -> str:
        """The active backend kind (``memory``/``jsonl``/``sqlite``/
        ``segment``)."""
        return self._backend.kind

    @property
    def supports_concurrent_writers(self) -> bool:
        """Whether several processes may write this store at once."""
        return self._backend.supports_concurrent_writers

    @property
    def stale_records(self) -> int:
        """Records written under another schema version.  Their keys are
        hashed with that version, so current lookups miss them and
        everything re-simulates; they are dead weight until the store is
        compacted (``repro-campaign status`` surfaces the count)."""
        return self._backend.stale_count()

    # ------------------------------------------------------------------
    def get(self, key: str) -> dict[str, Any] | None:
        """The stored result payload for ``key``, or ``None`` on a miss.

        Raises :class:`~repro.errors.CampaignError` when the record was
        written under a different store schema version: returning it
        would hand consumers a payload whose layout they no longer
        understand (the historical failure mode was a raw ``KeyError``
        deep inside dataset assembly).
        """
        record = self._backend.get_record(key)
        if record is None:
            return None
        written = record.get("store_version")
        if written != STORE_VERSION:
            where = self.path if self.path is not None else "<in-memory store>"
            raise CampaignError(
                f"cached entry {key} in {where} was written by store schema "
                f"version {written!r}, but this code expects version "
                f"{STORE_VERSION}; delete the store file (or point "
                "REPRO_BENCH_CACHE_DIR at a fresh directory) to re-simulate"
            )
        return record["result"]

    def put(
        self, key: str, descriptor: dict[str, Any], result: dict[str, Any]
    ) -> None:
        """Insert a result; re-putting an existing key is a no-op.

        A key held by a record of *another* schema version is overwritten
        instead of no-opped: silently dropping a freshly computed
        current-schema result would leave the entry permanently stale for
        any writer that recomputes without recalling first (the campaign
        engine itself never reaches this — :meth:`get` raises on such
        records and the documented recovery is deleting the file).  The
        replacement becomes the effective record across sessions too
        (append + last-wins on JSONL/segments, an upsert on SQLite).
        """
        existing = self._backend.get_record(key)
        if existing is not None and existing.get("store_version") == STORE_VERSION:
            return
        if job_key(descriptor) != key:
            raise CampaignError("store key does not match the job descriptor")
        self._backend.put_record(
            {
                "key": key,
                "store_version": STORE_VERSION,
                "job": descriptor,
                "result": result,
            }
        )

    def put_many(
        self, items: list[tuple[str, dict[str, Any], dict[str, Any]]]
    ) -> None:
        """Bulk-insert ``(key, descriptor, result)`` triples.

        The fast path for store population (migration, synthetic load
        generation): records are batched into one backend write and
        index flushing is deferred to :meth:`flush`/:meth:`close`.
        Unlike :meth:`put`, existing keys are overwritten (callers bulk
        load into fresh stores).
        """
        records = []
        for key, descriptor, result in items:
            if job_key(descriptor) != key:
                raise CampaignError("store key does not match the job descriptor")
            records.append(
                {
                    "key": key,
                    "store_version": STORE_VERSION,
                    "job": descriptor,
                    "result": result,
                }
            )
        self._backend.put_records(records)

    def iter_records(self) -> Iterator[dict[str, Any]]:
        """Stream every effective record (including other-version ones).

        Records are ``{"key", "store_version", "job", "result"}`` dicts;
        one per key, last-wins.  Unlike :meth:`get`, stale records are
        yielded rather than raised on, so admin tooling (status,
        migration, verification) can see them.
        """
        return self._backend.iter_records()

    def close(self) -> None:
        """Flush indexes and drop any open handles (idempotent)."""
        self._backend.close()

    def flush(self) -> None:
        """Persist index state without dropping caches/handles."""
        self._backend.flush()

    def release(self) -> None:
        """Flush and drop open handles — required before forking worker
        pools (a forked SQLite connection shares POSIX locks)."""
        self._backend.release()

    def refresh(self) -> None:
        """Pick up records written by other processes since open."""
        self._backend.refresh()

    def verify(self) -> list[dict[str, Any]]:
        """Report damaged entries (``{"file", "where", "problem"}``).

        Damage — truncated/corrupt lines, unreadable databases, garbled
        index sidecars — always loads as misses; this names exactly
        what is damaged so operators can decide whether to compact,
        re-simulate or restore.
        """
        return self._backend.verify()

    def compact(self) -> dict[str, int]:
        """Drop superseded and other-schema-version records in place.

        Returns ``{"kept": n, "dropped": m}``.  On JSONL/segment
        backends this rewrites the files (reclaiming dead lines); on
        SQLite it deletes stale rows and vacuums.
        """
        return self._backend.compact()

    # ------------------------------------------------------------------
    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __contains__(self, key: object) -> bool:
        return isinstance(key, str) and self._backend.contains(key)

    def __len__(self) -> int:
        return self._backend.count()

    def summary(self) -> dict[str, Any]:
        """Aggregate view for ``repro-campaign status`` (streamed; never
        materialises the whole store in memory on indexed backends).

        Quarantine records (persisted
        :class:`~repro.campaign.resilience.FailureRecord` entries,
        descriptor mode ``"failure"``) are counted separately as
        ``"quarantined"`` and kept out of the result breakdowns — they
        describe jobs with *no* result.
        """
        by_app: dict[str, int] = {}
        by_mode: dict[str, int] = {}
        results = 0
        quarantined = 0
        for record in self.iter_records():
            descriptor = record.get("job", {})
            mode = str(descriptor.get("mode", "?"))
            if mode == "failure":
                quarantined += 1
                continue
            results += 1
            app = str(descriptor.get("app", "?"))
            by_app[app] = by_app.get(app, 0) + 1
            by_mode[mode] = by_mode.get(mode, 0) + 1
        return {
            "path": str(self.path) if self.path is not None else None,
            "backend": self.backend,
            "results": results,
            "stale": self.stale_records,
            "quarantined": quarantined,
            "apps": dict(sorted(by_app.items())),
            "modes": dict(sorted(by_mode.items())),
        }


def migrate_store(
    source: str | Path,
    dest: str | Path,
    *,
    backend: str | None = None,
    source_backend: str | None = None,
) -> dict[str, Any]:
    """Copy every record of ``source`` into a fresh store at ``dest``.

    Records are carried over verbatim — payload bytes, descriptors and
    per-record schema versions included — so ``get()`` payloads and
    ``summary()`` (bar the path) are identical before and after.  The
    destination backend is auto-detected from ``dest`` unless named.

    Raises :class:`~repro.errors.CampaignError` for a pre-v2 source
    store (records without a ``store_version`` field): their keys were
    hashed under the old scheme and their payload layouts predate the
    schema, so "migrating" them would only enshrine dead weight —
    re-simulate into a fresh store instead.  Also refuses a non-empty
    destination (migration never merges).
    """
    source_path = Path(source)
    dest_path = Path(dest)
    if not source_path.exists():
        raise CampaignError(f"source store {source_path} does not exist")
    if source_path.resolve() == dest_path.resolve():
        raise CampaignError("source and destination stores are the same path")
    with ResultStore(source_path, backend=source_backend) as src:
        records = []
        for record in src.iter_records():
            if "store_version" not in record:
                raise CampaignError(
                    f"cannot migrate pre-v2 store {source_path}: record "
                    f"{record['key']} carries no store_version (keys were "
                    "hashed under the v1 scheme); re-simulate into a fresh "
                    "store instead"
                )
            records.append(record)
        with ResultStore(dest_path, backend=backend) as out:
            if len(out) > 0:
                raise CampaignError(
                    f"refusing to migrate into non-empty store {dest_path} "
                    f"({len(out)} records); migration never merges"
                )
            out._backend.put_records(records)
            stale = out.stale_records
            kind = out.backend
    return {
        "migrated": len(records),
        "stale": stale,
        "source": str(source_path),
        "dest": str(dest_path),
        "backend": kind,
    }
