"""The coalescing queue: many pending requests, few kernel passes.

Two requests that share a **grid key** — ``(benchmark, threads,
stride, node_id, seed)``, see :meth:`repro.api.TuningRequest.grid_key`
— are answered from the same CF x UCF measurement: objectives and TMMs
are evaluated *from* the grid, not measured into it.  The fleet replay
kernel (:mod:`repro.execution.fleet_replay`) goes further: requests
with *different* grid keys — different benchmarks, thread counts,
nodes, seeds — can still share one batched kernel invocation, because
every cell of every grid is just one fleet member.  The batcher
therefore coalesces under a configurable key: ``coalesce="fleet"``
(what the service uses) groups *all* pending requests together so N
queued requests across M applications cost one fleet pass, while
``coalesce="grid"`` preserves the historical per-grid-key grouping.  A
group flushes when it reaches ``max_batch`` members or its
``max_wait_s`` admission window closes.

This is sound because every cell's noise stream is keyed by (seed,
node, run key, region, iteration) — never by process, wall clock or
batch composition — so a coalesced answer is bit-identical to the solo
:func:`repro.api.tune` answer (property-tested in
``tests/serve/test_batcher.py``).

The batcher itself is a synchronous, clock-injected data structure —
no asyncio, no threads — so its invariants are directly testable; the
service (:mod:`repro.serve.service`) supplies the event loop, timers
and futures around it.  :func:`answer_group` is the pure execution
step: one batched measurement of the group's distinct grids, then one
answer per member request.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Callable

from repro import api
from repro.errors import CampaignError

__all__ = [
    "COALESCE_MODES",
    "CoalescingBatcher",
    "FLEET_KEY",
    "PendingGroup",
    "answer_group",
    "split_group",
]

#: Coalescing keys the batcher understands: per grid key, or one fleet.
COALESCE_MODES: tuple[str, ...] = ("grid", "fleet")

#: The fleet-compatible signature: every :class:`~repro.api.TuningRequest`
#: field is a per-member axis of the fleet kernel (benchmark, threads,
#: node, seed and stride all vary member-to-member), so one constant key
#: groups everything.  Kept as a named signature so a future request
#: field that selects *execution context* rather than measurement
#: identity has a place to split groups.
FLEET_KEY: tuple = ("fleet",)

#: Default admission window and batch cap.  The window only delays the
#: *first* request of a group; followers join for free.  20 ms is long
#: against network jitter between near-simultaneous clients and short
#: against a sweep (hundreds of ms cold).
DEFAULT_MAX_WAIT_S = 0.02
DEFAULT_MAX_BATCH = 16


@dataclass
class PendingGroup:
    """One coalescing key's pending requests, ordered by admission."""

    key: tuple
    requests: list[api.TuningRequest] = field(default_factory=list)
    #: Tickets (admission sequence numbers) parallel to ``requests``.
    tickets: list[int] = field(default_factory=list)
    deadline: float = 0.0


class CoalescingBatcher:
    """Group pending tuning requests by coalescing key, deterministically.

    ``admit`` files a request under its coalescing key (see
    :meth:`key_for`) and returns ``(ticket, started, fire)`` —
    ``started`` is True when the admission opened a new group (the
    caller should arm its flush timer) and ``fire`` is True when it
    filled the group to ``max_batch`` (flush now, don't wait for the
    window).  ``due(now)``/``pop`` drain groups whose window elapsed.
    The order of requests inside a group is admission order, and
    tickets are a global admission sequence: given the same admissions,
    flushes are fully deterministic (results never depend on order
    anyway — every member's answer is bit-identical to its solo
    answer).
    """

    def __init__(
        self,
        *,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_wait_s: float = DEFAULT_MAX_WAIT_S,
        clock: Callable[[], float] = time.monotonic,
        coalesce: str = "grid",
    ):
        if max_batch < 1:
            raise CampaignError("max_batch must be >= 1")
        if max_wait_s < 0:
            raise CampaignError("max_wait_s must be >= 0")
        if coalesce not in COALESCE_MODES:
            raise CampaignError(
                f"unknown coalesce mode: {coalesce!r}; "
                f"known: {COALESCE_MODES}"
            )
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s
        self.coalesce = coalesce
        self._clock = clock
        self._groups: dict[tuple, PendingGroup] = {}
        self._next_ticket = 0
        #: Lifetime counters (the service exposes them via /metrics).
        self.admitted = 0
        self.coalesced = 0
        self.groups_fired = 0

    # ------------------------------------------------------------------
    def key_for(self, request: api.TuningRequest) -> tuple:
        """The coalescing key one request files under."""
        if self.coalesce == "fleet":
            return FLEET_KEY
        return request.grid_key()

    def admit(self, request: api.TuningRequest) -> tuple[int, bool, bool]:
        """File one resolved request; returns (ticket, started, fire)."""
        key = self.key_for(request)
        group = self._groups.get(key)
        started = group is None
        if started:
            group = PendingGroup(
                key=key, deadline=self._clock() + self.max_wait_s
            )
            self._groups[key] = group
        else:
            self.coalesced += 1
        ticket = self._next_ticket
        self._next_ticket += 1
        group.requests.append(request)
        group.tickets.append(ticket)
        self.admitted += 1
        return ticket, started, len(group.requests) >= self.max_batch

    def pop(self, key: tuple) -> PendingGroup | None:
        """Remove and return one pending group (None if already fired)."""
        group = self._groups.pop(key, None)
        if group is not None:
            self.groups_fired += 1
        return group

    def due(self, now: float | None = None) -> list[tuple]:
        """Keys of groups whose admission window has closed."""
        now = self._clock() if now is None else now
        return [k for k, g in self._groups.items() if g.deadline <= now]

    def next_deadline(self) -> float | None:
        """Earliest pending deadline (None when nothing is queued)."""
        if not self._groups:
            return None
        return min(g.deadline for g in self._groups.values())

    def drain(self) -> list[PendingGroup]:
        """Flush every pending group regardless of deadlines."""
        groups = [self.pop(key) for key in list(self._groups)]
        return [g for g in groups if g is not None]

    @property
    def pending(self) -> int:
        return sum(len(g.requests) for g in self._groups.values())


def split_group(group: PendingGroup, parts: int) -> list[PendingGroup]:
    """Partition one fired group by grid key for parallel execution.

    A fleet-coalesced group holds *every* pending request; executing it
    as one unit would serialise the whole queue onto one pool worker.
    Splitting by grid key keeps the batching win intact — requests that
    share a measurement stay together, so no grid is ever measured
    twice — while distinct grids spread round-robin across up to
    ``parts`` subgroups that execute concurrently.  Admission order is
    preserved within each subgroup and answers are bit-identical either
    way (only ``meta.coalesced``, which is explicitly not part of the
    answer, observes the partitioning).
    """
    if parts <= 1 or len(group.requests) <= 1:
        return [group]
    slot_of: dict[tuple, int] = {}
    buckets: list[PendingGroup] = []
    for request, ticket in zip(group.requests, group.tickets):
        key = request.grid_key()
        slot = slot_of.get(key)
        if slot is None:
            slot = len(slot_of) % parts
            slot_of[key] = slot
            if slot == len(buckets):
                buckets.append(
                    PendingGroup(
                        key=group.key + (slot,), deadline=group.deadline
                    )
                )
        bucket = buckets[slot]
        bucket.requests.append(request)
        bucket.tickets.append(ticket)
    return buckets


def answer_group(
    requests: list[api.TuningRequest],
    options: api.ExecutionOptions | None = None,
) -> list[api.TuningAnswer]:
    """Answer one coalesced group from one batched measurement.

    The group's *distinct* grid keys are deduplicated and their grids
    measured in a single :func:`repro.api.sweep_grids` invocation (one
    fleet-kernel pass spanning every benchmark/thread/node/seed in the
    group — or, under ``options.engine="loop"``, the per-cell
    reference); each request's objective argmin — plus its TMM-priced
    dynamic run, when it carries one — is then evaluated from its grid.
    Per request, the result is bit-identical to :func:`repro.api.tune`,
    which performs exactly this fold for a group of one.  Groups from a
    grid-keyed batcher (all requests sharing one grid key) are simply
    the single-grid special case.
    """
    if not requests:
        return []
    resolved = [request.resolved() for request in requests]
    grid_of: dict[tuple, api.GridMeasurement] = {}
    unique = []
    for request in resolved:
        key = request.grid_key()
        if key not in grid_of:
            grid_of[key] = None  # type: ignore[assignment]
            unique.append(request)
    options = options if options is not None else api.ExecutionOptions()
    grids = api.sweep_grids(
        [request.grid_spec() for request in unique], options=options
    )
    for request, grid in zip(unique, grids):
        grid_of[request.grid_key()] = grid
    answers = []
    for request in resolved:
        answer = grid_of[request.grid_key()].answer(request)
        if request.tmm is not None:
            answer = replace(
                answer, dynamic=api._dynamic_outcome(request, options)
            )
        answers.append(answer)
    return answers
