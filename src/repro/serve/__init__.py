"""Tuning-as-a-service: the long-running front end of the facade.

The package turns :func:`repro.api.tune` into a service:

* :mod:`repro.serve.schema` — the versioned wire format (request
  parsing, ok/error response envelopes);
* :mod:`repro.serve.batcher` — the coalescing queue: pending requests
  sharing a grid key are answered from **one** pass of the config-axis
  sweep kernel, bit-identical to solo execution;
* :mod:`repro.serve.service` — the request lifecycle (admission →
  dedup → coalesce → execute → respond) with store-backed caching,
  PR-7 failure semantics and graceful drain;
* :mod:`repro.serve.server` — a stdlib asyncio HTTP/1.1 front end
  (``repro-serve``).
"""

from repro.serve.batcher import CoalescingBatcher, answer_group
from repro.serve.schema import (
    WIRE_VERSION,
    error_response,
    ok_response,
    parse_request,
    request_payload,
)
from repro.serve.server import TuningServer
from repro.serve.service import ServiceMetrics, TuningService

__all__ = [
    "WIRE_VERSION",
    "parse_request",
    "request_payload",
    "ok_response",
    "error_response",
    "CoalescingBatcher",
    "answer_group",
    "ServiceMetrics",
    "TuningService",
    "TuningServer",
]
