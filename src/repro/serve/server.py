"""``repro-serve``: a stdlib asyncio HTTP/1.1 front end for the service.

The server is deliberately minimal — ``asyncio.start_server`` plus a
hand-rolled HTTP/1.1 exchange (request line, headers, Content-Length
body, ``Connection: close``) — because the container bakes in no web
framework and the wire protocol is three routes of JSON:

``POST /v1/tune``
    One wire-schema request (:mod:`repro.serve.schema`) in, one
    envelope out.  HTTP status mirrors the envelope: 200 for ``ok``,
    400 for ``bad-request``/``bad-value``, 409 for ``quarantined``,
    503 for ``draining``, 500 otherwise.
``GET /healthz``
    ``{"status": "ok", "draining": false}`` — liveness and drain state.
``GET /metrics``
    :meth:`TuningService.metrics_payload` verbatim (request counters,
    cache hits, in-flight joins, coalescing counters).

On SIGTERM/SIGINT the server stops accepting connections, drains the
service (pending groups flush, in-flight requests get their
responses), and the process exits with code 130 — the same drain
contract and exit code as ``repro-campaign run`` (documented in
``docs/cli.md``).

Run it as ``repro-serve --port 0`` for an ephemeral port; the chosen
address is printed as ``serving on http://HOST:PORT`` on stdout, which
is what the CI smoke harness and the integration tests scrape.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys
from typing import Any

from repro.campaign.store import ResultStore
from repro.serve import batcher as batching
from repro.serve.schema import error_response
from repro.serve.service import DEFAULT_DRAIN_DEADLINE_S, TuningService

__all__ = ["TuningServer", "main"]

#: Exit code after a graceful SIGTERM/SIGINT drain (mirrors
#: ``repro-campaign run``).
DRAIN_EXIT_CODE = 130

_STATUS_BY_CODE = {
    "bad-request": 400,
    "bad-value": 400,
    "quarantined": 409,
    "draining": 503,
    "execution-error": 500,
    "internal": 500,
}

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Refuse bodies past this size before reading them (a tuning request
#: is a few hundred bytes; a TMM-carrying one a few kilobytes).
MAX_BODY_BYTES = 1 << 20


class TuningServer:
    """Bind a :class:`TuningService` to an asyncio TCP listener."""

    def __init__(self, service: TuningService, *, host: str = "127.0.0.1", port: int = 0):
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.Server | None = None

    async def start(self) -> tuple[str, int]:
        """Start listening; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        host, port = self._server.sockets[0].getsockname()[:2]
        self.port = port
        return host, port

    async def aclose(self) -> None:
        """Stop accepting, then drain the service."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.service.aclose()

    async def serve_until(self, stop: asyncio.Event) -> None:
        """Serve until ``stop`` is set, then drain and return."""
        await self.start()
        print(f"serving on http://{self.host}:{self.port}", flush=True)
        await stop.wait()
        print("draining", flush=True)
        await self.aclose()

    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, payload = await self._handle_exchange(reader)
            body = json.dumps(payload).encode("utf-8")
            reason = _REASONS.get(status, "OK")
            head = (
                f"HTTP/1.1 {status} {reason}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            )
            writer.write(head.encode("ascii") + body)
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _handle_exchange(
        self, reader: asyncio.StreamReader
    ) -> tuple[int, dict[str, Any]]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split()
        if len(parts) != 3:
            return 400, error_response("bad-request", "malformed request line")
        method, path, _ = parts
        length = 0
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    return 400, error_response(
                        "bad-request", "malformed Content-Length"
                    )
        if method == "GET" and path == "/healthz":
            return 200, {"status": "ok", "draining": self.service.draining}
        if method == "GET" and path == "/metrics":
            return 200, self.service.metrics_payload()
        if path != "/v1/tune":
            return 404, error_response("bad-request", f"no such route: {path}")
        if method != "POST":
            return 405, error_response(
                "bad-request", "POST /v1/tune is the only method here"
            )
        if length > MAX_BODY_BYTES:
            return 413, error_response(
                "bad-request", f"body exceeds {MAX_BODY_BYTES} bytes"
            )
        body = await reader.readexactly(length) if length else b""
        try:
            payload = json.loads(body.decode("utf-8") or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return 400, error_response("bad-request", f"body is not JSON: {exc}")
        envelope = await self.service.handle(payload)
        if envelope.get("status") == "ok":
            return 200, envelope
        code = envelope.get("error", {}).get("code", "internal")
        return _STATUS_BY_CODE.get(code, 500), envelope


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description=(
            "Serve tuning requests over HTTP/JSON with store-backed "
            "dedup and cross-request batching (see docs/serving.md)."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port",
        type=int,
        default=8642,
        help="TCP port (0 picks an ephemeral port, printed on stdout)",
    )
    parser.add_argument(
        "--store",
        default=None,
        help="result-store path for persistent dedup (omit for in-memory)",
    )
    parser.add_argument(
        "--max-batch",
        type=int,
        default=batching.DEFAULT_MAX_BATCH,
        help="flush a coalescing group at this many members",
    )
    parser.add_argument(
        "--max-wait-ms",
        type=float,
        default=batching.DEFAULT_MAX_WAIT_S * 1000.0,
        help="admission window before a group flushes (milliseconds)",
    )
    parser.add_argument(
        "--unbatched",
        action="store_true",
        help="disable coalescing (one sweep per request; the benchmark's control arm)",
    )
    parser.add_argument(
        "--coalesce",
        choices=batching.COALESCE_MODES,
        default="fleet",
        help="coalescing key: 'fleet' (default) merges requests across "
             "benchmarks/nodes/seeds into one fleet-kernel pass; 'grid' "
             "restores per-grid-key grouping (answers identical either way)",
    )
    parser.add_argument(
        "--retry-failed",
        action="store_true",
        help="retry jobs with persisted failure records instead of refusing them",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="execute independent coalesced groups on this many warm "
             "worker processes (needs a concurrent-writer store backend "
             "such as SQLite/segments; JSONL/in-memory stores fall back "
             "to the serial in-process path)",
    )
    parser.add_argument(
        "--drain-deadline-s",
        type=float,
        default=DEFAULT_DRAIN_DEADLINE_S,
        help="on SIGTERM/SIGINT, cancel groups still queued after this "
             "many seconds with a structured 'draining' error instead "
             "of waiting forever (running groups always finish)",
    )
    parser.add_argument(
        "--warm",
        nargs="*",
        default=[],
        metavar="BENCHMARK",
        help="preload these benchmarks' caches before the worker pool "
             "forks, so steady-state dispatch pays no warm-up",
    )
    return parser


async def _amain(args: argparse.Namespace) -> int:
    store = ResultStore(args.store) if args.store is not None else None
    service = TuningService(
        store=store,
        max_batch=args.max_batch,
        max_wait_s=args.max_wait_ms / 1000.0,
        admission="unbatched" if args.unbatched else "batched",
        coalesce=args.coalesce,
        retry_failed=args.retry_failed,
        workers=args.workers,
        drain_deadline_s=args.drain_deadline_s,
        warm=tuple(args.warm),
    )
    if service.pool_fallback is not None:
        print(f"workers fallback: {service.pool_fallback}", flush=True)
    server = TuningServer(service, host=args.host, port=args.port)
    stop = asyncio.Event()
    drained_by_signal = False

    def request_drain() -> None:
        nonlocal drained_by_signal
        drained_by_signal = True
        stop.set()

    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, request_drain)
    await server.serve_until(stop)
    if store is not None:
        store.close()
    return DRAIN_EXIT_CODE if drained_by_signal else 0


def main(argv: list[str] | None = None) -> int:
    """Console entry point for ``repro-serve``."""
    args = _build_parser().parse_args(argv)
    try:
        return asyncio.run(_amain(args))
    except KeyboardInterrupt:  # signal handler not yet installed
        return DRAIN_EXIT_CODE


if __name__ == "__main__":
    sys.exit(main())
