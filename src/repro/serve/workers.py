"""The warm process pool behind the service: parallel group execution.

The serving layer's coalescing (PR 8) and the fleet kernel (PR 9) make
one group cheap; this module makes *many* groups cheap by executing
independent coalesced groups concurrently across a persistent pool of
worker processes instead of through the service's single executor
thread.  Three properties make that sound:

**Bit-identity.**  Every noise stream is keyed by (seed, node, run key,
region, iteration) — never by process, wall clock or batch composition
— so a group priced in worker process A is byte-equal to the same group
priced in worker B, in the parent, or in yesterday's campaign.  Killing
a worker mid-group and re-running the group elsewhere cannot change an
answer, which is why the pool's crash recovery below is a plain
respawn-and-resubmit.

**Warm forks.**  Workers are forked from the parent *after*
:func:`warm_process` has populated the expensive per-process state —
built registry applications, compiled structural/controlled schedule
caches, the memoised region-timing and power-breakdown tables, the RNG
digest-prefix hash states and ziggurat tables.  Fork's copy-on-write
semantics hand every worker that state for free, so steady-state
dispatch pays no per-worker warm-up.  (On platforms without fork, the
pool initializer re-warms in each worker instead — same caches, paid
once per worker.)

**Direct store writes.**  With a concurrent-writer store backend
(SQLite, sharded segments), each worker opens its own handle (the
per-pid cache of :func:`repro.campaign.engine._worker_store`) and
persists grid rows as it executes them, exactly like direct-writing
campaign pool workers — same keys, same payloads, no funneling through
the parent.  The service refuses to pool against a JSONL or in-memory
store (:func:`pool_supported`) and falls back to in-process execution.

Workers never raise across the process boundary for expected failures:
a :class:`~repro.errors.ReproError` is converted in-worker to the same
structured error envelope the serial service path would produce
(:func:`failure_envelope`), because exceptions like
:class:`~repro.errors.CampaignExecutionError` carry keyword-only state
that does not survive pickling.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import time
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any

from repro import api
from repro.campaign.engine import CampaignEngine, _worker_store
from repro.campaign.resilience import _shutdown_pool
from repro.errors import CampaignError, CampaignExecutionError, ReproError
from repro.serve import batcher as batching
from repro.serve.schema import error_response

__all__ = [
    "GroupDispatch",
    "WorkerPool",
    "WorkerSpec",
    "failure_envelope",
    "pool_supported",
    "warm_process",
]

#: Grid thinning stride of the warm-up sweep: keeps only the axis
#: defaults (a 2x2 grid), so warming one benchmark costs four cells
#: while still compiling its structural schedule and touching every
#: per-process cache a real request needs.
WARM_STRIDE = 1_000_000

#: Bounded pool-respawn budget per group: a group that sees the pool
#: break this many times in a row definitively fails (mirrors
#: :class:`repro.campaign.resilience.RetryPolicy.max_retries`).
DEFAULT_MAX_RESPAWNS = 2


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker process needs to rebuild its execution state.

    Engines and stores are not picklable; workers reconstruct them from
    the store path/backend (cached per pid), mirroring the campaign
    pool's direct-write workers.  ``store_path`` of ``None`` means the
    service runs storeless — workers then execute without a campaign
    engine, exactly like the storeless serial path.
    """

    store_path: str | None = None
    store_backend: str | None = None
    retry_failed: bool = False
    #: Benchmarks warmed at pool start (and per worker without fork).
    warm: tuple[str, ...] = ()


def pool_supported(store) -> str | None:
    """Why ``store`` cannot take pool workers (``None`` when it can).

    Parallel workers write (and read) the store concurrently, so the
    backend must support concurrent writers — SQLite (WAL) and sharded
    segments do; the JSONL tier and in-memory stores do not.
    """
    if store is None:
        return None
    if store.path is None:
        return "an in-memory store cannot be shared with worker processes"
    if not store.supports_concurrent_writers:
        return (
            f"store backend {store.backend!r} does not support "
            "concurrent writers"
        )
    return None


def failure_envelope(exc: ReproError) -> dict[str, Any]:
    """The structured error envelope for one failed group.

    Shared by the serial service path and the pool workers (which
    convert in-worker — :class:`CampaignExecutionError` carries
    keyword-only constructor state that does not survive pickling).
    Under ``on_failure="quarantine"`` a failed job surfaces when the
    facade indexes its missing payload: a ``CampaignError`` naming the
    failure and the ``retry_failed`` remedy.  Both that and an explicit
    :class:`CampaignExecutionError` mean "this job is known bad".
    """
    if isinstance(exc, CampaignExecutionError):
        detail = "; ".join(
            record.describe() for record in exc.failures.values()
        )
        return error_response("quarantined", detail or str(exc))
    if "retry_failed" in str(exc):
        return error_response("quarantined", str(exc))
    return error_response("execution-error", str(exc))


# ---------------------------------------------------------------------------
# Per-process warm state (parent before fork; worker initializer otherwise)
# ---------------------------------------------------------------------------

#: Benchmarks this process has already warmed.  Forked workers inherit
#: the parent's set (together with the caches it stands for), so the
#: fork path never re-warms; spawn-started workers import a fresh module
#: and warm themselves in the pool initializer.
_WARMED: set[str] = set()


def warm_process(benchmarks: tuple[str, ...]) -> None:
    """Populate this process's expensive per-request caches.

    One minimal-stride sweep per benchmark builds the registry
    application, compiles its structural schedule into the owner-keyed
    :class:`~repro.execution.controlled_replay.ScheduleCache` pool,
    fills the memoised region-timing and power-breakdown tables for the
    default operating points, and draws through the RNG digest-prefix /
    ziggurat fast paths so their tables exist.  Idempotent per
    benchmark; results are deliberately not stored anywhere.
    """
    for name in benchmarks:
        if name in _WARMED:
            continue
        api.sweep_grid(name, stride=WARM_STRIDE)
        _WARMED.add(name)


def _init_worker(spec: WorkerSpec) -> None:
    """Pool initializer: warm spawn-started workers.

    Under the fork start method this is a no-op — the parent warmed
    before the pool existed and ``_WARMED`` (with the caches behind it)
    arrives via copy-on-write.
    """
    warm_process(spec.warm)


def _spawn_probe(delay_s: float) -> int:
    """Hold a worker busy long enough to force the next one to spawn."""
    time.sleep(delay_s)
    return os.getpid()


# ---------------------------------------------------------------------------
# Worker-side group execution
# ---------------------------------------------------------------------------

#: Per-process campaign engines for group execution, keyed like
#: :data:`repro.campaign.engine._WORKER_STORES` — the pid guard matters
#: under fork, where a parent's engine would otherwise be inherited.
_WORKER_ENGINES: dict[tuple[int, str | None], CampaignEngine] = {}


def _worker_options(spec: WorkerSpec) -> api.ExecutionOptions:
    engine = None
    if spec.store_path is not None:
        key = (os.getpid(), spec.store_path)
        engine = _WORKER_ENGINES.get(key)
        if engine is None:
            store = _worker_store(spec.store_path, spec.store_backend)
            engine = CampaignEngine(store=store, max_workers=0)
            _WORKER_ENGINES[key] = engine
    return api.ExecutionOptions(
        campaign=engine,
        on_failure="quarantine",
        retry_failed=spec.retry_failed,
    )


def _run_group(
    requests: tuple[api.TuningRequest, ...], spec: WorkerSpec
) -> tuple:
    """Execute one coalesced group in a worker process.

    Returns ``("ok", [TuningAnswer.payload(), ...], pid)`` — payload
    dicts, not answers, so nothing model-shaped crosses the process
    boundary — or ``("error", envelope, pid)`` with the same structured
    envelope the serial path produces.  The worker's store handle is
    flushed before returning, so every grid row of an answered group is
    durable (and visible to other workers) by the time the client has
    its response.
    """
    options = _worker_options(spec)
    try:
        answers = batching.answer_group(list(requests), options)
    except ReproError as exc:
        outcome = ("error", failure_envelope(exc), os.getpid())
    else:
        outcome = (
            "ok",
            [answer.payload() for answer in answers],
            os.getpid(),
        )
    if options.campaign is not None and options.campaign.store is not None:
        options.campaign.store.flush()
    return outcome


# ---------------------------------------------------------------------------
# Parent-side pool
# ---------------------------------------------------------------------------


class GroupDispatch:
    """Cancellation handle for one dispatched group.

    The service registers one per in-flight group; at the drain
    deadline it calls :meth:`cancel`, which succeeds only for groups
    whose pool future has not started executing — exactly the queued
    work a bounded drain is allowed to abandon.  A running group is
    never interrupted (its waiters get their real answer).
    """

    __slots__ = ("future", "cancelled")

    def __init__(self) -> None:
        self.future: Future | None = None
        self.cancelled = False

    def cancel(self) -> bool:
        future = self.future
        if future is not None and future.cancel():
            self.cancelled = True
        return self.cancelled


class WorkerPool:
    """A persistent, warm, crash-tolerant process pool for group execution.

    Forked once at service start (after :func:`warm_process`), then
    reused for every group — no per-request process churn.  A
    ``BrokenProcessPool`` (a worker SIGKILLed mid-group, an OOM kill)
    triggers a generation-guarded respawn: the first affected group
    rebuilds the pool, concurrent victims just resubmit, and each group
    retries up to ``max_respawns`` times.  Resubmission is safe because
    answers are bit-identical wherever they run and store re-puts of
    already-persisted rows are no-ops.
    """

    def __init__(
        self,
        workers: int,
        spec: WorkerSpec,
        *,
        max_respawns: int = DEFAULT_MAX_RESPAWNS,
    ):
        if workers < 2:
            raise CampaignError(
                f"a worker pool needs at least 2 workers, got {workers} "
                "(use the in-process serial path instead)"
            )
        self.workers = workers
        self.spec = spec
        self.max_respawns = max_respawns
        self._executor: ProcessPoolExecutor | None = None
        self._generation = 0
        self._respawn_lock = asyncio.Lock()
        self._inflight = 0
        #: Groups completed per worker pid (a respawned pool's workers
        #: appear as fresh pids alongside their predecessors).
        self.groups_by_pid: dict[int, int] = {}

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Warm the parent, then create the pool (workers fork warm).

        The caller must release its own store handle around this call:
        modern ``ProcessPoolExecutor``s spawn workers lazily on submit,
        so the probes below force every worker to fork *now* — each
        probe occupies a worker long enough that the next submit finds
        no idle one and spawns a fresh process — while the parent holds
        no open handles a child could inherit.
        """
        if self._executor is not None:
            return
        warm_process(self.spec.warm)
        self._executor = self._make_pool()
        probes = [
            self._executor.submit(_spawn_probe, 0.1)
            for _ in range(self.workers)
        ]
        for probe in probes:
            probe.result(timeout=60.0)

    def _make_pool(self) -> ProcessPoolExecutor:
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        return ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=ctx,
            initializer=_init_worker,
            initargs=(self.spec,),
        )

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    @property
    def generation(self) -> int:
        """How many times the pool has been respawned after a crash."""
        return self._generation

    def metrics(self) -> dict[str, Any]:
        """The worker-pool gauges exposed at ``GET /metrics``."""
        return {
            "workers": self.workers,
            "busy_workers": min(self._inflight, self.workers),
            "queue_depth": max(0, self._inflight - self.workers),
            "groups_executed": sum(self.groups_by_pid.values()),
            "groups_per_worker": {
                str(pid): count
                for pid, count in sorted(self.groups_by_pid.items())
            },
        }

    # ------------------------------------------------------------------
    async def run_group(
        self,
        requests: list[api.TuningRequest],
        dispatch: GroupDispatch | None = None,
    ) -> tuple:
        """Execute one group on the pool; returns the worker's outcome.

        Raises :class:`asyncio.CancelledError` when ``dispatch`` was
        cancelled before the group started (drain deadline), and the
        final :class:`BrokenProcessPool` when the respawn budget is
        exhausted — everything else comes back as an ``("ok", ...)`` /
        ``("error", ...)`` outcome tuple from :func:`_run_group`.
        """
        if self._executor is None:
            raise CampaignError("worker pool is not started")
        self._inflight += 1
        try:
            respawns = 0
            while True:
                generation = self._generation
                try:
                    future = self._executor.submit(
                        _run_group, tuple(requests), self.spec
                    )
                except BrokenProcessPool:
                    respawns += 1
                    if respawns > self.max_respawns:
                        raise
                    await self._respawn(generation)
                    continue
                if dispatch is not None:
                    dispatch.future = future
                try:
                    outcome = await asyncio.wrap_future(future)
                except asyncio.CancelledError:
                    if dispatch is not None and dispatch.cancelled:
                        raise
                    # A respawn tore down the old pool and cancelled its
                    # queued futures; this group was an innocent victim
                    # and resubmits against the fresh pool for free.
                    await self._respawn(generation)
                    continue
                except BrokenProcessPool:
                    respawns += 1
                    if respawns > self.max_respawns:
                        raise
                    await self._respawn(generation)
                    continue
                if outcome[0] == "ok":
                    pid = outcome[2]
                    self.groups_by_pid[pid] = (
                        self.groups_by_pid.get(pid, 0) + 1
                    )
                return outcome
        finally:
            self._inflight -= 1

    async def _respawn(self, seen_generation: int) -> None:
        """Replace a broken pool, exactly once per generation.

        Concurrent victims of one crash all call in; the first one
        holding the lock respawns, the rest see the bumped generation
        and simply resubmit.  The old pool's corpse is force-killed off
        the event loop (its joins can take seconds).
        """
        async with self._respawn_lock:
            if self._generation != seen_generation or self._executor is None:
                return
            broken = self._executor
            self._executor = self._make_pool()
            self._generation += 1
            await asyncio.get_running_loop().run_in_executor(
                None, lambda: _shutdown_pool(broken, force=True)
            )
