"""The serving wire format, version 1.

One request/response schema serves every caller: the HTTP service
(:mod:`repro.serve.server`), ``repro-tune --json`` and the benchmark
load generator all speak exactly this format, so batch and interactive
consumers parse one shape.

A request is a JSON object::

    {"version": 1, "benchmark": "Lulesh", "threads": 24,
     "objective": "energy", "tmm": null, "stride": 1,
     "node_id": 0, "seed": 42}

``version`` and ``benchmark`` are required; everything else defaults as
in :class:`repro.api.TuningRequest`.  Unknown fields are rejected —
silently ignoring them would hide client typos (``"objectve"``) as
wrong answers.

Responses are envelopes tagged ``status``::

    {"version": 1, "status": "ok", "result": {...TuningAnswer...},
     "meta": {"cached": false, "coalesced": 3}}
    {"version": 1, "status": "error",
     "error": {"code": "bad-request", "message": "..."}}

``result`` is exactly :meth:`repro.api.TuningAnswer.payload` — floats
serialise via ``repr`` (shortest round trip), so a response body being
byte-comparable means the answers are bit-identical.

Malformed payloads raise :class:`~repro.errors.SchemaError` (shape/
type/version problems); semantically invalid requests raise
:class:`~repro.errors.TuningError` (unknown benchmark/objective, bad
stride) from :meth:`TuningRequest.validate`.  The service maps both to
structured error responses.
"""

from __future__ import annotations

from typing import Any

from repro import config
from repro.api import TuningAnswer, TuningRequest
from repro.errors import SchemaError

__all__ = [
    "WIRE_VERSION",
    "ERROR_CODES",
    "parse_request",
    "request_payload",
    "ok_response",
    "error_response",
]

#: Bump on any incompatible change to the request or response shape.
WIRE_VERSION = 1

#: Every error code a response may carry.
#:
#: ``bad-request``     malformed payload (shape, types, version)
#: ``bad-value``       well-formed but semantically invalid request
#: ``quarantined``     the request's jobs are quarantined in the store
#: ``execution-error`` the simulation failed definitively
#: ``draining``        the service is shutting down; retry elsewhere
#: ``internal``        unexpected server-side failure
ERROR_CODES: tuple[str, ...] = (
    "bad-request",
    "bad-value",
    "quarantined",
    "execution-error",
    "draining",
    "internal",
)

#: Wire field -> (accepted types, default).  ``threads`` and ``tmm``
#: are nullable; the rest must carry their type when present.
_OPTIONAL_FIELDS: dict[str, tuple[tuple[type, ...], Any]] = {
    "threads": ((int, type(None)), None),
    "objective": ((str,), "energy"),
    "tmm": ((str, type(None)), None),
    "stride": ((int,), 1),
    "node_id": ((int,), 0),
    "seed": ((int,), config.DEFAULT_SEED),
}


def _type_names(types: tuple[type, ...]) -> str:
    return " or ".join(
        "null" if t is type(None) else t.__name__ for t in types
    )


def parse_request(payload: Any) -> TuningRequest:
    """Parse and validate one wire request into a `TuningRequest`.

    Raises :class:`SchemaError` on shape problems, and lets
    :class:`~repro.errors.TuningError` from semantic validation
    propagate (unknown benchmark, unknown objective, stride < 1).
    """
    if not isinstance(payload, dict):
        raise SchemaError(
            f"request must be a JSON object, got {type(payload).__name__}"
        )
    version = payload.get("version")
    if version is None:
        raise SchemaError("request is missing the 'version' field")
    if version != WIRE_VERSION:
        raise SchemaError(
            f"unsupported wire version {version!r}; "
            f"this server speaks version {WIRE_VERSION}"
        )
    benchmark = payload.get("benchmark")
    if not isinstance(benchmark, str) or not benchmark:
        raise SchemaError("'benchmark' must be a non-empty string")
    known = {"version", "benchmark", *_OPTIONAL_FIELDS}
    unknown = sorted(set(payload) - known)
    if unknown:
        raise SchemaError(
            f"unknown request field(s): {', '.join(unknown)}; "
            f"known: {', '.join(sorted(known))}"
        )
    values: dict[str, Any] = {}
    for name, (types, default) in _OPTIONAL_FIELDS.items():
        value = payload.get(name, default)
        # bool is an int subclass; "threads": true must not parse.
        if isinstance(value, bool) or not isinstance(value, types):
            raise SchemaError(
                f"'{name}' must be {_type_names(types)}, "
                f"got {type(value).__name__}"
            )
        values[name] = value
    request = TuningRequest(benchmark=benchmark, **values)
    request.validate()
    return request


def request_payload(request: TuningRequest) -> dict[str, Any]:
    """The wire form of a request (round-trips through `parse_request`)."""
    return {
        "version": WIRE_VERSION,
        "benchmark": request.benchmark,
        "threads": request.threads,
        "objective": request.objective,
        "tmm": request.tmm,
        "stride": request.stride,
        "node_id": request.node_id,
        "seed": request.seed,
    }


def ok_response(
    answer: TuningAnswer | dict[str, Any],
    *,
    meta: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """A success envelope around one tuning answer.

    ``answer`` is either a :class:`~repro.api.TuningAnswer` or its
    already-serialised :meth:`~repro.api.TuningAnswer.payload` dict —
    pool workers ship payload dicts across the process boundary, and
    re-hydrating them only to re-serialise would be waste.

    ``meta`` carries serving diagnostics (cache/coalescing facts) that
    are explicitly *not* part of the answer: two responses for the same
    request must have equal ``result`` regardless of how they were
    produced, while ``meta`` may differ.
    """
    result = (
        answer.payload() if isinstance(answer, TuningAnswer) else answer
    )
    return {
        "version": WIRE_VERSION,
        "status": "ok",
        "result": result,
        "meta": dict(meta or {}),
    }


def error_response(code: str, message: str) -> dict[str, Any]:
    """A structured error envelope."""
    if code not in ERROR_CODES:
        raise SchemaError(
            f"unknown error code: {code!r}; known: {ERROR_CODES}"
        )
    return {
        "version": WIRE_VERSION,
        "status": "error",
        "error": {"code": code, "message": message},
    }
