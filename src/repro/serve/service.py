"""The request lifecycle: admission → dedup → coalesce → execute → respond.

:class:`TuningService` is the transport-agnostic core of ``repro-serve``
(the HTTP front end in :mod:`repro.serve.server` is a thin shell around
:meth:`TuningService.handle`, and the throughput benchmark drives
``handle`` directly).  One request flows through four gates:

1. **Admission** — parse and validate against the wire schema; while
   draining, new work is refused with a ``draining`` error so clients
   retry elsewhere.
2. **Dedup** — an *exact* duplicate of an in-flight request joins its
   future (zero extra work); a request whose grid rows are all in the
   result store is answered from the store without touching the
   execution path.  Result records always shadow failure records here —
   a stale :class:`~repro.campaign.resilience.FailureRecord` left over
   from a failed run that later succeeded must not quarantine a request
   whose answer is sitting in the store (the same precedence
   :meth:`CampaignEngine.run` applies).  Only when rows are *missing*
   does a persisted failure record quarantine the request (unless the
   service runs with ``retry_failed=True``).
3. **Coalesce** — distinct pending requests sharing a grid key wait in
   the :class:`~repro.serve.batcher.CoalescingBatcher` and are answered
   from one pass of the sweep kernel.
4. **Execute** — groups run on a single worker thread through the
   campaign engine (store-backed caching plus the PR-7 retry/timeout
   semantics); definitive failures come back as structured
   ``quarantined`` / ``execution-error`` responses, never as a dead
   connection.

Graceful drain (:meth:`drain`): stop admitting, flush every pending
group immediately, and wait for in-flight work — every accepted request
gets its response before the process exits.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro import api
from repro.campaign.engine import (
    CampaignEngine,
    qualified_descriptor,
    topology_job_key,
)
from repro.campaign.plan import grid_jobs
from repro.campaign.resilience import FailureRecord, failure_descriptor
from repro.campaign.store import ResultStore, job_key
from repro.errors import (
    CampaignExecutionError,
    ReproError,
    SchemaError,
    TuningError,
)
from repro.execution.simulator import OperatingPoint
from repro.serve import batcher as batching
from repro.serve.schema import error_response, ok_response, parse_request

__all__ = ["ServiceMetrics", "TuningService"]


@dataclass
class ServiceMetrics:
    """Lifetime counters, exposed verbatim at ``GET /metrics``."""

    requests: int = 0
    ok: int = 0
    errors: int = 0
    #: Requests answered entirely from the result store.
    cached_hits: int = 0
    #: Requests that joined an identical in-flight request's future.
    inflight_joins: int = 0
    #: Requests refused because the service was draining.
    drain_rejections: int = 0
    #: Requests answered with a ``quarantined`` error.
    quarantined: int = 0

    def payload(self) -> dict[str, int]:
        return {
            "requests": self.requests,
            "ok": self.ok,
            "errors": self.errors,
            "cached_hits": self.cached_hits,
            "inflight_joins": self.inflight_joins,
            "drain_rejections": self.drain_rejections,
            "quarantined": self.quarantined,
        }


@dataclass
class _Inflight:
    """One in-flight identity: its future and how many callers wait."""

    future: asyncio.Future
    waiters: int = 1
    coalesced_with: int = 0
    extra: dict[str, Any] = field(default_factory=dict)


class TuningService:
    """Asyncio tuning service with store dedup and cross-request batching.

    ``admission="batched"`` (the default) coalesces via the configured
    ``max_batch``/``max_wait_s`` window; ``"unbatched"`` degrades to a
    one-request-per-sweep service (the benchmark's control arm) while
    keeping the rest of the lifecycle identical.  A ``store`` turns on
    persistent dedup and quarantine; without one the service still
    coalesces and joins in-flight duplicates, it just never remembers.
    """

    def __init__(
        self,
        *,
        store: ResultStore | None = None,
        max_batch: int = batching.DEFAULT_MAX_BATCH,
        max_wait_s: float = batching.DEFAULT_MAX_WAIT_S,
        admission: str = "batched",
        coalesce: str = "fleet",
        retry_failed: bool = False,
        retry_policy=None,
    ):
        if admission not in ("batched", "unbatched"):
            raise SchemaError(
                f"unknown admission mode: {admission!r}; "
                "known: ('batched', 'unbatched')"
            )
        if admission == "unbatched":
            max_batch, max_wait_s = 1, 0.0
        self.admission = admission
        self.retry_failed = retry_failed
        self.metrics = ServiceMetrics()
        # "fleet" (the default) coalesces across grid keys: requests
        # for different benchmarks/threads/nodes/seeds share one
        # fleet-kernel invocation.  "grid" restores the historical
        # per-grid-key grouping.  Answers are bit-identical either way.
        self.batcher = batching.CoalescingBatcher(
            max_batch=max_batch, max_wait_s=max_wait_s, coalesce=coalesce
        )
        engine_kwargs: dict[str, Any] = {"max_workers": 0}
        if retry_policy is not None:
            engine_kwargs["retry_policy"] = retry_policy
        self.engine = (
            CampaignEngine(store=store, **engine_kwargs)
            if store is not None
            else None
        )
        # "quarantine": definitive failures persist as FailureRecords
        # (with a store), so later duplicates are refused instantly
        # instead of re-simulating a known-bad job.
        self.options = api.ExecutionOptions(
            campaign=self.engine,
            on_failure="quarantine",
            retry_failed=retry_failed,
        )
        self._inflight: dict[api.TuningRequest, _Inflight] = {}
        self._draining = False
        self._group_tasks: set[asyncio.Task] = set()
        # One worker thread: groups execute serially, so the engine and
        # store never see concurrent in-process writers, and batched
        # throughput gains come from doing fewer sweeps, not more cores.
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve"
        )

    # ------------------------------------------------------------------
    @property
    def draining(self) -> bool:
        return self._draining

    def metrics_payload(self) -> dict[str, Any]:
        payload = self.metrics.payload()
        payload.update(
            admitted=self.batcher.admitted,
            coalesced=self.batcher.coalesced,
            groups_fired=self.batcher.groups_fired,
            pending=self.batcher.pending,
            inflight=len(self._inflight),
        )
        return payload

    # ------------------------------------------------------------------
    async def handle(self, payload: Any) -> dict[str, Any]:
        """Serve one wire request; always returns a response envelope."""
        self.metrics.requests += 1
        response = await self._handle(payload)
        if response.get("status") == "ok":
            self.metrics.ok += 1
        else:
            self.metrics.errors += 1
        return response

    async def _handle(self, payload: Any) -> dict[str, Any]:
        if self._draining:
            self.metrics.drain_rejections += 1
            return error_response(
                "draining", "service is draining; resubmit elsewhere"
            )
        try:
            request = parse_request(payload).resolved()
        except SchemaError as exc:
            return error_response("bad-request", str(exc))
        except TuningError as exc:
            return error_response("bad-value", str(exc))

        # Exact in-flight duplicate: join its future.
        entry = self._inflight.get(request)
        if entry is not None:
            entry.waiters += 1
            self.metrics.inflight_joins += 1
            return await asyncio.shield(entry.future)

        # Store fast path: a fully cached grid answers without executing,
        # and a persisted failure quarantines without executing.
        if self.engine is not None and self.engine.store is not None:
            hit = await self._from_store(request)
            if hit is not None:
                return hit

        return await self._enqueue(request)

    # ------------------------------------------------------------------
    def _grid_jobs(self, request: api.TuningRequest):
        cfs, ucfs = api.grid_axes(request.stride)
        cluster = self.options.resolve_cluster(request.seed)
        points = [
            OperatingPoint(cf, ucf, request.threads)
            for cf in cfs
            for ucf in ucfs
        ]
        jobs = grid_jobs(
            request.benchmark,
            label="heatmap",
            points=points,
            node_id=request.node_id,
            seed=request.seed,
            node_seed=cluster.seed,
        )
        return jobs, cfs, ucfs

    async def _from_store(self, request: api.TuningRequest) -> dict | None:
        """Answer (or quarantine) one request from the result store.

        Returns ``None`` when any grid row is missing *and* none of the
        missing rows carries a failure record — the request then takes
        the normal coalesce/execute path.  A result record always wins
        over a failure record for the same job: stale quarantine
        entries (failed once, re-run successfully later) never shadow a
        stored answer.
        """
        store = self.engine.store
        topology = self.engine.topology
        jobs, cfs, ucfs = self._grid_jobs(request)
        payloads = []
        for job in jobs:
            payload = store.get(topology_job_key(job, topology))
            if payload is not None:
                # Results shadow failure records, not the reverse.
                payloads.append(payload)
                continue
            if not self.retry_failed:
                failure = store.get(
                    job_key(
                        failure_descriptor(
                            qualified_descriptor(job, topology)
                        )
                    )
                )
                if failure is not None:
                    record = FailureRecord.from_payload(failure)
                    self.metrics.quarantined += 1
                    return error_response(
                        "quarantined",
                        f"job is quarantined: {record.describe()}; "
                        "restart the service with --retry-failed to retry",
                    )
            return None
        # TMM-carrying requests still need their dynamic run priced; let
        # the execution path do it (the engine caches that job too).
        if request.tmm is not None:
            return None
        shape = (len(cfs), len(ucfs))
        grid = api.GridMeasurement(
            benchmark=request.benchmark,
            threads=request.threads,
            node_id=request.node_id,
            seed=request.seed,
            core_frequencies=cfs,
            uncore_frequencies=ucfs,
            node_energy_j=np.array(
                [e for p in payloads for e in p["node_energy_j"]]
            ).reshape(shape),
            cpu_energy_j=np.array(
                [e for p in payloads for e in p["cpu_energy_j"]]
            ).reshape(shape),
            time_s=np.array(
                [t for p in payloads for t in p["time_s"]]
            ).reshape(shape),
        )
        self.metrics.cached_hits += 1
        return ok_response(
            grid.answer(request), meta={"cached": True, "coalesced": 0}
        )

    # ------------------------------------------------------------------
    async def _enqueue(self, request: api.TuningRequest) -> dict[str, Any]:
        loop = asyncio.get_running_loop()
        entry = _Inflight(future=loop.create_future())
        self._inflight[request] = entry
        key = self.batcher.key_for(request)
        _, started, fire = self.batcher.admit(request)
        if fire:
            self._fire(key)
        elif started:
            task = loop.create_task(self._fire_later(key))
            self._group_tasks.add(task)
            task.add_done_callback(self._group_tasks.discard)
        return await asyncio.shield(entry.future)

    async def _fire_later(self, key: tuple) -> None:
        await asyncio.sleep(self.batcher.max_wait_s)
        self._fire(key)

    def _fire(self, key: tuple) -> None:
        group = self.batcher.pop(key)
        if group is None:
            return  # already fired (max_batch or drain beat the timer)
        task = asyncio.get_running_loop().create_task(
            self._execute_group(group)
        )
        self._group_tasks.add(task)
        task.add_done_callback(self._group_tasks.discard)

    async def _execute_group(self, group: batching.PendingGroup) -> None:
        loop = asyncio.get_running_loop()
        coalesced = len(group.requests) - 1
        try:
            answers = await loop.run_in_executor(
                self._executor,
                batching.answer_group,
                group.requests,
                self.options,
            )
        except ReproError as exc:
            response = self._failure_response(exc)
            if response["error"]["code"] == "quarantined":
                self.metrics.quarantined += len(group.requests)
            for request in group.requests:
                self._resolve(request, dict(response))
            return
        for request, answer in zip(group.requests, answers):
            self._resolve(
                request,
                ok_response(
                    answer, meta={"cached": False, "coalesced": coalesced}
                ),
            )

    def _failure_response(self, exc: ReproError) -> dict[str, Any]:
        # Under on_failure="quarantine" a failed job surfaces when the
        # facade indexes its missing payload: a CampaignError naming the
        # failure and the retry_failed remedy.  Both that and an
        # explicit CampaignExecutionError mean "this job is known bad".
        if isinstance(exc, CampaignExecutionError):
            detail = "; ".join(
                record.describe() for record in exc.failures.values()
            )
            return error_response("quarantined", detail or str(exc))
        if "retry_failed" in str(exc):
            return error_response("quarantined", str(exc))
        return error_response("execution-error", str(exc))

    def _resolve(self, request: api.TuningRequest, response: dict) -> None:
        entry = self._inflight.pop(request, None)
        if entry is not None and not entry.future.done():
            entry.future.set_result(response)

    # ------------------------------------------------------------------
    async def drain(self) -> None:
        """Stop admitting, flush pending groups, await in-flight work."""
        self._draining = True
        for group in self.batcher.drain():
            task = asyncio.get_running_loop().create_task(
                self._execute_group(group)
            )
            self._group_tasks.add(task)
            task.add_done_callback(self._group_tasks.discard)
        while self._group_tasks:
            await asyncio.gather(
                *list(self._group_tasks), return_exceptions=True
            )
        futures = [e.future for e in self._inflight.values()]
        if futures:
            await asyncio.gather(*futures, return_exceptions=True)

    async def aclose(self) -> None:
        """Drain, then release the worker thread and flush the store."""
        await self.drain()
        self._executor.shutdown(wait=True)
        if self.engine is not None and self.engine.store is not None:
            self.engine.store.flush()
