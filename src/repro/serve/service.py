"""The request lifecycle: admission → dedup → coalesce → execute → respond.

:class:`TuningService` is the transport-agnostic core of ``repro-serve``
(the HTTP front end in :mod:`repro.serve.server` is a thin shell around
:meth:`TuningService.handle`, and the throughput benchmark drives
``handle`` directly).  One request flows through four gates:

1. **Admission** — parse and validate against the wire schema; while
   draining, new work is refused with a ``draining`` error so clients
   retry elsewhere.
2. **Dedup** — an *exact* duplicate of an in-flight request joins its
   future (zero extra work); a request whose grid rows are all in the
   result store is answered from the store without touching the
   execution path.  Result records always shadow failure records here —
   a stale :class:`~repro.campaign.resilience.FailureRecord` left over
   from a failed run that later succeeded must not quarantine a request
   whose answer is sitting in the store (the same precedence
   :meth:`CampaignEngine.run` applies).  Only when rows are *missing*
   does a persisted failure record quarantine the request (unless the
   service runs with ``retry_failed=True``).
3. **Coalesce** — distinct pending requests sharing a grid key wait in
   the :class:`~repro.serve.batcher.CoalescingBatcher` and are answered
   from one pass of the sweep kernel.
4. **Execute** — with ``workers >= 2`` and a concurrent-writer store
   backend, independent groups execute *concurrently* on the warm
   process pool of :mod:`repro.serve.workers` (fleet-coalesced groups
   are first split by grid key so distinct measurements spread across
   workers); otherwise groups run serially on one worker thread.
   Either way execution goes through the campaign engine (store-backed
   caching plus the PR-7 retry/timeout semantics) and definitive
   failures come back as structured ``quarantined`` /
   ``execution-error`` responses, never as a dead connection.
   Responses are bit-identical across both paths.

Graceful drain (:meth:`drain`): stop admitting, flush every pending
group immediately, and wait for in-flight work — bounded by the drain
deadline: a group still *queued* (not yet started) when the deadline
expires is cancelled and its waiters get a structured ``draining``
error instead of hanging forever; groups already running always finish
and answer normally.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro import api
from repro.campaign.engine import (
    CampaignEngine,
    qualified_descriptor,
    topology_job_key,
)
from repro.campaign.plan import grid_jobs
from repro.campaign.resilience import FailureRecord, failure_descriptor
from repro.campaign.store import ResultStore, job_key
from repro.errors import ReproError, SchemaError, TuningError
from repro.execution.simulator import OperatingPoint
from repro.serve import batcher as batching
from repro.serve import workers as pooling
from repro.serve.schema import error_response, ok_response, parse_request

__all__ = ["DEFAULT_DRAIN_DEADLINE_S", "ServiceMetrics", "TuningService"]

#: Default bound on :meth:`TuningService.drain`: how long flushed and
#: in-flight groups may keep executing before still-queued ones are
#: cancelled with a ``draining`` error.
DEFAULT_DRAIN_DEADLINE_S = 30.0

#: Sentinel distinguishing "use the service default" from an explicit
#: ``deadline_s=None`` (wait forever) in :meth:`TuningService.drain`.
_UNSET: Any = object()


@dataclass
class ServiceMetrics:
    """Lifetime counters, exposed verbatim at ``GET /metrics``."""

    requests: int = 0
    ok: int = 0
    errors: int = 0
    #: Requests answered entirely from the result store.
    cached_hits: int = 0
    #: Requests that joined an identical in-flight request's future.
    inflight_joins: int = 0
    #: Requests refused because the service was draining.
    drain_rejections: int = 0
    #: Requests answered with a ``quarantined`` error.
    quarantined: int = 0
    #: Requests whose queued group was cancelled at the drain deadline.
    drain_cancelled: int = 0

    def payload(self) -> dict[str, int]:
        return {
            "requests": self.requests,
            "ok": self.ok,
            "errors": self.errors,
            "cached_hits": self.cached_hits,
            "inflight_joins": self.inflight_joins,
            "drain_rejections": self.drain_rejections,
            "quarantined": self.quarantined,
            "drain_cancelled": self.drain_cancelled,
        }


@dataclass
class _Inflight:
    """One in-flight identity: its future and how many callers wait."""

    future: asyncio.Future
    waiters: int = 1
    coalesced_with: int = 0
    extra: dict[str, Any] = field(default_factory=dict)


class TuningService:
    """Asyncio tuning service with store dedup and cross-request batching.

    ``admission="batched"`` (the default) coalesces via the configured
    ``max_batch``/``max_wait_s`` window; ``"unbatched"`` degrades to a
    one-request-per-sweep service (the benchmark's control arm) while
    keeping the rest of the lifecycle identical.  A ``store`` turns on
    persistent dedup and quarantine; without one the service still
    coalesces and joins in-flight duplicates, it just never remembers.

    ``workers >= 2`` executes independent groups concurrently on a
    warm process pool (:mod:`repro.serve.workers`) when the store can
    take parallel writers (SQLite/segments, or no store at all); a
    JSONL or in-memory store falls back to the serial in-process path
    and records why under ``worker_pool.fallback`` in the metrics.
    ``warm`` names benchmarks whose caches are preloaded before the
    pool forks, so workers start warm.
    """

    def __init__(
        self,
        *,
        store: ResultStore | None = None,
        max_batch: int = batching.DEFAULT_MAX_BATCH,
        max_wait_s: float = batching.DEFAULT_MAX_WAIT_S,
        admission: str = "batched",
        coalesce: str = "fleet",
        retry_failed: bool = False,
        retry_policy=None,
        workers: int = 1,
        drain_deadline_s: float | None = DEFAULT_DRAIN_DEADLINE_S,
        warm: tuple[str, ...] = (),
    ):
        if admission not in ("batched", "unbatched"):
            raise SchemaError(
                f"unknown admission mode: {admission!r}; "
                "known: ('batched', 'unbatched')"
            )
        if admission == "unbatched":
            max_batch, max_wait_s = 1, 0.0
        self.admission = admission
        self.retry_failed = retry_failed
        self.metrics = ServiceMetrics()
        # "fleet" (the default) coalesces across grid keys: requests
        # for different benchmarks/threads/nodes/seeds share one
        # fleet-kernel invocation.  "grid" restores the historical
        # per-grid-key grouping.  Answers are bit-identical either way.
        self.batcher = batching.CoalescingBatcher(
            max_batch=max_batch, max_wait_s=max_wait_s, coalesce=coalesce
        )
        engine_kwargs: dict[str, Any] = {"max_workers": 0}
        if retry_policy is not None:
            engine_kwargs["retry_policy"] = retry_policy
        self.engine = (
            CampaignEngine(store=store, **engine_kwargs)
            if store is not None
            else None
        )
        # "quarantine": definitive failures persist as FailureRecords
        # (with a store), so later duplicates are refused instantly
        # instead of re-simulating a known-bad job.
        self.options = api.ExecutionOptions(
            campaign=self.engine,
            on_failure="quarantine",
            retry_failed=retry_failed,
        )
        self._inflight: dict[api.TuningRequest, _Inflight] = {}
        self._draining = False
        self.drain_deadline_s = drain_deadline_s
        self._group_tasks: set[asyncio.Task] = set()
        #: Cancellation handles of dispatched groups (drain deadline).
        self._dispatches: set[pooling.GroupDispatch] = set()
        # Serial path: one worker thread, so the engine and store never
        # see concurrent in-process writers and batched throughput
        # gains come from doing fewer sweeps — the pool below is what
        # adds cores.
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve"
        )
        self._serial_inflight = 0
        self._serial_groups = 0
        # Parallel path: a warm process pool, only when the store can
        # take concurrent writers (or there is no store to write).
        self.workers = 1
        self.pool_fallback: str | None = None
        self._pool: pooling.WorkerPool | None = None
        requested = max(1, int(workers))
        if requested > 1:
            reason = pooling.pool_supported(store)
            if reason is not None:
                self.pool_fallback = reason
            else:
                spec = pooling.WorkerSpec(
                    store_path=(
                        str(store.path) if store is not None else None
                    ),
                    store_backend=(
                        store.backend if store is not None else None
                    ),
                    retry_failed=retry_failed,
                    warm=tuple(warm),
                )
                self._pool = pooling.WorkerPool(requested, spec)
                # Workers must not inherit an open store handle: release
                # the parent's before the pool forks, reopen after.
                if store is not None:
                    store.release()
                try:
                    self._pool.start()
                finally:
                    if store is not None:
                        store.refresh()
                self.workers = requested
        elif warm:
            pooling.warm_process(tuple(warm))

    # ------------------------------------------------------------------
    @property
    def draining(self) -> bool:
        return self._draining

    def metrics_payload(self) -> dict[str, Any]:
        payload = self.metrics.payload()
        payload.update(
            admitted=self.batcher.admitted,
            coalesced=self.batcher.coalesced,
            groups_fired=self.batcher.groups_fired,
            pending=self.batcher.pending,
            inflight=len(self._inflight),
        )
        payload["worker_pool"] = self._pool_metrics()
        return payload

    def _pool_metrics(self) -> dict[str, Any]:
        """Worker-pool gauges: saturation must be observable."""
        if self._pool is not None:
            return self._pool.metrics()
        gauges: dict[str, Any] = {
            "workers": 1,
            "busy_workers": min(1, self._serial_inflight),
            "queue_depth": max(0, self._serial_inflight - 1),
            "groups_executed": self._serial_groups,
            "groups_per_worker": {"in-process": self._serial_groups},
        }
        if self.pool_fallback is not None:
            gauges["fallback"] = self.pool_fallback
        return gauges

    # ------------------------------------------------------------------
    async def handle(self, payload: Any) -> dict[str, Any]:
        """Serve one wire request; always returns a response envelope."""
        self.metrics.requests += 1
        response = await self._handle(payload)
        if response.get("status") == "ok":
            self.metrics.ok += 1
        else:
            self.metrics.errors += 1
        return response

    async def _handle(self, payload: Any) -> dict[str, Any]:
        if self._draining:
            self.metrics.drain_rejections += 1
            return error_response(
                "draining", "service is draining; resubmit elsewhere"
            )
        try:
            request = parse_request(payload).resolved()
        except SchemaError as exc:
            return error_response("bad-request", str(exc))
        except TuningError as exc:
            return error_response("bad-value", str(exc))

        # Exact in-flight duplicate: join its future.
        entry = self._inflight.get(request)
        if entry is not None:
            entry.waiters += 1
            self.metrics.inflight_joins += 1
            return await asyncio.shield(entry.future)

        # Store fast path: a fully cached grid answers without executing,
        # and a persisted failure quarantines without executing.
        if self.engine is not None and self.engine.store is not None:
            hit = await self._from_store(request)
            if hit is not None:
                return hit

        return await self._enqueue(request)

    # ------------------------------------------------------------------
    def _grid_jobs(self, request: api.TuningRequest):
        cfs, ucfs = api.grid_axes(request.stride)
        cluster = self.options.resolve_cluster(request.seed)
        points = [
            OperatingPoint(cf, ucf, request.threads)
            for cf in cfs
            for ucf in ucfs
        ]
        jobs = grid_jobs(
            request.benchmark,
            label="heatmap",
            points=points,
            node_id=request.node_id,
            seed=request.seed,
            node_seed=cluster.seed,
        )
        return jobs, cfs, ucfs

    async def _from_store(self, request: api.TuningRequest) -> dict | None:
        """Answer (or quarantine) one request from the result store.

        Returns ``None`` when any grid row is missing *and* none of the
        missing rows carries a failure record — the request then takes
        the normal coalesce/execute path.  A result record always wins
        over a failure record for the same job: stale quarantine
        entries (failed once, re-run successfully later) never shadow a
        stored answer.
        """
        store = self.engine.store
        topology = self.engine.topology
        jobs, cfs, ucfs = self._grid_jobs(request)
        payloads = []
        for job in jobs:
            payload = store.get(topology_job_key(job, topology))
            if payload is not None:
                # Results shadow failure records, not the reverse.
                payloads.append(payload)
                continue
            if not self.retry_failed:
                failure = store.get(
                    job_key(
                        failure_descriptor(
                            qualified_descriptor(job, topology)
                        )
                    )
                )
                if failure is not None:
                    record = FailureRecord.from_payload(failure)
                    self.metrics.quarantined += 1
                    return error_response(
                        "quarantined",
                        f"job is quarantined: {record.describe()}; "
                        "restart the service with --retry-failed to retry",
                    )
            return None
        # TMM-carrying requests still need their dynamic run priced; let
        # the execution path do it (the engine caches that job too).
        if request.tmm is not None:
            return None
        shape = (len(cfs), len(ucfs))
        grid = api.GridMeasurement(
            benchmark=request.benchmark,
            threads=request.threads,
            node_id=request.node_id,
            seed=request.seed,
            core_frequencies=cfs,
            uncore_frequencies=ucfs,
            node_energy_j=np.array(
                [e for p in payloads for e in p["node_energy_j"]]
            ).reshape(shape),
            cpu_energy_j=np.array(
                [e for p in payloads for e in p["cpu_energy_j"]]
            ).reshape(shape),
            time_s=np.array(
                [t for p in payloads for t in p["time_s"]]
            ).reshape(shape),
        )
        self.metrics.cached_hits += 1
        return ok_response(
            grid.answer(request), meta={"cached": True, "coalesced": 0}
        )

    # ------------------------------------------------------------------
    async def _enqueue(self, request: api.TuningRequest) -> dict[str, Any]:
        loop = asyncio.get_running_loop()
        entry = _Inflight(future=loop.create_future())
        self._inflight[request] = entry
        key = self.batcher.key_for(request)
        _, started, fire = self.batcher.admit(request)
        if fire:
            self._fire(key)
        elif started:
            task = loop.create_task(self._fire_later(key))
            self._group_tasks.add(task)
            task.add_done_callback(self._group_tasks.discard)
        return await asyncio.shield(entry.future)

    async def _fire_later(self, key: tuple) -> None:
        await asyncio.sleep(self.batcher.max_wait_s)
        self._fire(key)

    def _fire(self, key: tuple) -> None:
        group = self.batcher.pop(key)
        if group is None:
            return  # already fired (max_batch or drain beat the timer)
        self._launch(group)

    def _launch(self, group: batching.PendingGroup) -> None:
        """Start one fired group's execution task(s).

        With a pool, a fleet-coalesced group is first split by grid key
        (``batching.split_group``) so distinct measurements execute
        concurrently across workers instead of serialising the whole
        queue onto one; requests sharing a grid stay together, so no
        measurement is duplicated.  Serially, the group runs whole.
        """
        loop = asyncio.get_running_loop()
        parts = (
            batching.split_group(group, self.workers)
            if self._pool is not None
            else [group]
        )
        for part in parts:
            task = loop.create_task(self._execute_group(part))
            self._group_tasks.add(task)
            task.add_done_callback(self._group_tasks.discard)

    async def _dispatch_group(
        self,
        requests: list[api.TuningRequest],
        dispatch: pooling.GroupDispatch,
    ) -> tuple:
        """Execute one group; returns a worker-style outcome tuple."""
        if self._pool is not None:
            return await self._pool.run_group(requests, dispatch)
        future = self._executor.submit(
            batching.answer_group, list(requests), self.options
        )
        dispatch.future = future
        self._serial_inflight += 1
        try:
            answers = await asyncio.wrap_future(future)
        finally:
            self._serial_inflight -= 1
        self._serial_groups += 1
        return ("ok", [answer.payload() for answer in answers], None)

    async def _execute_group(self, group: batching.PendingGroup) -> None:
        dispatch = pooling.GroupDispatch()
        self._dispatches.add(dispatch)
        coalesced = len(group.requests) - 1
        try:
            try:
                outcome = await self._dispatch_group(
                    group.requests, dispatch
                )
            except asyncio.CancelledError:
                if not dispatch.cancelled:
                    raise
                # Drain deadline: this group never started executing.
                self.metrics.drain_cancelled += len(group.requests)
                response = error_response(
                    "draining",
                    "the drain deadline expired before this queued "
                    "group started; resubmit against another instance",
                )
                for request in group.requests:
                    self._resolve(request, dict(response))
                return
            except ReproError as exc:
                outcome = ("error", pooling.failure_envelope(exc), None)
            except Exception as exc:  # pool broken beyond its respawn budget
                outcome = (
                    "error",
                    error_response(
                        "internal",
                        f"worker pool failed executing this group: {exc}",
                    ),
                    None,
                )
        finally:
            self._dispatches.discard(dispatch)
        if outcome[0] == "error":
            envelope = outcome[1]
            if envelope["error"]["code"] == "quarantined":
                self.metrics.quarantined += len(group.requests)
            for request in group.requests:
                self._resolve(request, dict(envelope))
            return
        for request, payload in zip(group.requests, outcome[1]):
            self._resolve(
                request,
                ok_response(
                    payload, meta={"cached": False, "coalesced": coalesced}
                ),
            )

    def _resolve(self, request: api.TuningRequest, response: dict) -> None:
        entry = self._inflight.pop(request, None)
        if entry is not None and not entry.future.done():
            entry.future.set_result(response)

    # ------------------------------------------------------------------
    async def drain(self, deadline_s: float | None = _UNSET) -> None:
        """Stop admitting, flush pending groups, await in-flight work.

        Bounded: after ``deadline_s`` (defaulting to the service's
        ``drain_deadline_s``; ``None`` waits forever) any group that
        has not *started* executing is cancelled and its waiters get a
        structured ``draining`` error.  Groups already running always
        finish and answer normally — cancellation succeeds only on
        queued executor futures, so no in-progress work is interrupted.
        """
        self._draining = True
        if deadline_s is _UNSET:
            deadline_s = self.drain_deadline_s
        for group in self.batcher.drain():
            self._launch(group)
        while self._group_tasks:
            done, pending = await asyncio.wait(
                set(self._group_tasks), timeout=deadline_s
            )
            if pending:
                for dispatch in list(self._dispatches):
                    dispatch.cancel()
                # Cancelled groups resolve immediately with `draining`;
                # running ones keep going — wait them out unbounded.
                deadline_s = None
        futures = [e.future for e in self._inflight.values()]
        if futures:
            await asyncio.gather(*futures, return_exceptions=True)

    async def aclose(self) -> None:
        """Drain, then release the execution backends and the store."""
        await self.drain()
        self._executor.shutdown(wait=True)
        if self._pool is not None:
            self._pool.close()
        if self.engine is not None and self.engine.store is not None:
            self.engine.store.flush()
