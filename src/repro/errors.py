"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while letting
programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class HardwareError(ReproError):
    """Raised for invalid operations against the simulated hardware."""


class MSRError(HardwareError):
    """Raised on invalid MSR access (unknown register, bad width, locked)."""


class FrequencyError(HardwareError):
    """Raised when a requested frequency is outside the supported range."""


class CounterError(ReproError):
    """Raised for invalid PAPI counter operations."""


class EventSetError(CounterError):
    """Raised when an event set is misused (overfull, not started, ...)."""


class WorkloadError(ReproError):
    """Raised for malformed workload / region definitions."""


class TraceError(ReproError):
    """Raised for malformed traces or invalid trace operations."""


class InstrumentationError(ReproError):
    """Raised when instrumentation or filtering is misconfigured."""


class TuningError(ReproError):
    """Raised by the PTF layer for invalid tuning requests."""


class SchemaError(ReproError):
    """Raised by the serving layer for malformed wire payloads."""


class ModelError(ReproError):
    """Raised by the modeling layer (bad shapes, untrained model, ...)."""


class TuningModelError(ReproError):
    """Raised for malformed tuning-model (TMM) files."""


class RRLError(ReproError):
    """Raised by the READEX Runtime Library."""


class JobError(ReproError):
    """Raised by the job/SLURM accounting layer."""


class CampaignError(ReproError):
    """Raised by the experiment-campaign engine and result store."""


class JobTimeoutError(CampaignError):
    """One campaign job exceeded its per-job timeout (transient: the
    engine kills and respawns the worker pool, then retries the job)."""


class CampaignExecutionError(CampaignError):
    """One or more campaign jobs definitively failed under the
    ``on_failure="raise"`` policy.

    Unlike a bare re-raise of the first worker exception, this error
    reports *partial completion*: ``completed`` maps job keys to the
    payloads finished before (or alongside) the failure, ``failures``
    maps job keys to their :class:`~repro.campaign.resilience.FailureRecord`,
    and ``not_run`` lists jobs never attempted.  With a store attached
    every completed payload is already persisted when this is raised.
    """

    def __init__(
        self,
        message: str,
        *,
        completed: dict | None = None,
        failures: dict | None = None,
        not_run: list | None = None,
    ):
        super().__init__(message)
        self.completed = completed or {}
        self.failures = failures or {}
        self.not_run = list(not_run or [])


class CampaignInterrupted(CampaignError):
    """A campaign run was drained by SIGINT/SIGTERM.

    Running jobs were allowed to finish, their results were persisted,
    and (when the engine was given a manifest path) a resume manifest
    was written; re-running with ``--resume`` continues bit-identically.
    """

    def __init__(
        self,
        message: str,
        *,
        signal_name: str = "signal",
        completed: int = 0,
        planned: int = 0,
        manifest: str | None = None,
    ):
        super().__init__(message)
        self.signal_name = signal_name
        self.completed = completed
        self.planned = planned
        self.manifest = manifest
