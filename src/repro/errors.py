"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while letting
programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class HardwareError(ReproError):
    """Raised for invalid operations against the simulated hardware."""


class MSRError(HardwareError):
    """Raised on invalid MSR access (unknown register, bad width, locked)."""


class FrequencyError(HardwareError):
    """Raised when a requested frequency is outside the supported range."""


class CounterError(ReproError):
    """Raised for invalid PAPI counter operations."""


class EventSetError(CounterError):
    """Raised when an event set is misused (overfull, not started, ...)."""


class WorkloadError(ReproError):
    """Raised for malformed workload / region definitions."""


class TraceError(ReproError):
    """Raised for malformed traces or invalid trace operations."""


class InstrumentationError(ReproError):
    """Raised when instrumentation or filtering is misconfigured."""


class TuningError(ReproError):
    """Raised by the PTF layer for invalid tuning requests."""


class ModelError(ReproError):
    """Raised by the modeling layer (bad shapes, untrained model, ...)."""


class TuningModelError(ReproError):
    """Raised for malformed tuning-model (TMM) files."""


class RRLError(ReproError):
    """Raised by the READEX Runtime Library."""


class JobError(ReproError):
    """Raised by the job/SLURM accounting layer."""


class CampaignError(ReproError):
    """Raised by the experiment-campaign engine and result store."""
