"""repro — region-based energy-aware tuning of HPC applications.

A faithful, self-contained reproduction of *"Modelling DVFS and UFS for
Region-Based Energy Aware Tuning of HPC Applications"* (Chadha & Gerndt,
IPDPS Workshops 2019): the PTF tuning plugin with its neural energy
model, the READEX runtime stack it plugs into, and a simulated
Haswell-EP cluster standing in for the paper's testbed.

Quick start::

    from repro import (
        Cluster, PeriscopeTuningFramework, build_dataset,
        train_network, TrainingConfig,
    )
    from repro.workloads import registry

    dataset = build_dataset(registry.training_benchmarks())
    model = train_network(dataset.features, dataset.targets,
                          config=TrainingConfig(epochs=10))
    outcome = PeriscopeTuningFramework(Cluster(4), model).tune("Lulesh")
    print(outcome.plugin_result.phase_configuration)

See ``examples/`` for runnable end-to-end scenarios and ``benchmarks/``
for the reproduction of every table and figure of the paper.
"""

from repro import config
from repro.api import (
    ExecutionOptions,
    TuningAnswer,
    TuningRequest,
    replay,
    savings,
    sweep_grid,
    tune,
)
from repro.campaign import (
    CampaignEngine,
    CampaignJob,
    CampaignPlan,
    ResultStore,
)
from repro.errors import ReproError
from repro.execution.simulator import (
    ExecutionSimulator,
    OperatingPoint,
    RunResult,
)
from repro.hardware.cluster import Cluster
from repro.hardware.node import ComputeNode
from repro.modeling.dataset import EnergyDataset, build_dataset
from repro.modeling.network import EnergyNetwork
from repro.modeling.training import TrainedModel, TrainingConfig, train_network
from repro.ptf.framework import PeriscopeTuningFramework, TuningOutcome
from repro.readex.rrl import RRL
from repro.readex.tuning_model import TuningModel
from repro.workloads import registry

__version__ = "1.0.0"

__all__ = [
    "config",
    "ExecutionOptions",
    "TuningRequest",
    "TuningAnswer",
    "tune",
    "sweep_grid",
    "replay",
    "savings",
    "ReproError",
    "CampaignEngine",
    "CampaignJob",
    "CampaignPlan",
    "ResultStore",
    "ExecutionSimulator",
    "OperatingPoint",
    "RunResult",
    "Cluster",
    "ComputeNode",
    "EnergyDataset",
    "build_dataset",
    "EnergyNetwork",
    "TrainedModel",
    "TrainingConfig",
    "train_network",
    "PeriscopeTuningFramework",
    "TuningOutcome",
    "RRL",
    "TuningModel",
    "registry",
    "__version__",
]
