"""Neural-network building blocks (numpy, from scratch).

Only what the paper's architecture needs: dense layers with He
initialisation [32] and ReLU activations [30].
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError
from repro.util.rng import rng_for


class Dense:
    """Fully-connected layer ``y = x W + b``.

    Weights are drawn from a zero-mean unit-std Gaussian scaled by
    ``sqrt(2 / n_in)`` (He et al.), biases start at zero — exactly the
    initialisation Section IV-C describes.
    """

    def __init__(self, n_in: int, n_out: int, *, rng: np.random.Generator | None = None):
        if n_in <= 0 or n_out <= 0:
            raise ModelError("layer dimensions must be positive")
        rng = rng or rng_for("dense-init", n_in, n_out)
        self.weights = rng.standard_normal((n_in, n_out)) * np.sqrt(2.0 / n_in)
        self.bias = np.zeros(n_out)
        self._x: np.ndarray | None = None
        self.grad_weights = np.zeros_like(self.weights)
        self.grad_bias = np.zeros_like(self.bias)

    @property
    def parameters(self) -> list[np.ndarray]:
        return [self.weights, self.bias]

    @property
    def gradients(self) -> list[np.ndarray]:
        return [self.grad_weights, self.grad_bias]

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.weights.shape[0]:
            raise ModelError(
                f"dense layer expected (*, {self.weights.shape[0]}), got {x.shape}"
            )
        self._x = x
        return x @ self.weights + self.bias

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise ModelError("backward before forward")
        # Write into the preallocated gradient buffers: training performs
        # one backward per (stochastic) batch, so reallocating them every
        # step dominated the allocator traffic of a training run.  The
        # buffer identity is stable, which also lets the optimiser bind
        # the gradient list once instead of rebuilding it per update.
        np.matmul(self._x.T, grad_out, out=self.grad_weights)
        np.sum(grad_out, axis=0, out=self.grad_bias)
        return grad_out @ self.weights.T


class ReLU:
    """Rectified linear unit, elementwise."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    @property
    def parameters(self) -> list[np.ndarray]:
        return []

    @property
    def gradients(self) -> list[np.ndarray]:
        return []

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise ModelError("backward before forward")
        return grad_out * self._mask
