"""Energy modelling (Section IV): the neural network and its baselines.

* :mod:`repro.modeling.layers` / :mod:`.network` / :mod:`.adam` /
  :mod:`.loss` / :mod:`.training` — the paper's 9-5-5-1 ReLU network
  implemented from scratch on numpy, He initialisation, ADAM, MSE;
* :mod:`repro.modeling.scaler` — standardise/center input features;
* :mod:`repro.modeling.selection` / :mod:`.vif` — the optimal-counter
  selection algorithm of Chadha et al. [24] with the VIF
  multicollinearity criterion (Table I);
* :mod:`repro.modeling.regression` — the regression-based power/time
  baseline of [24] (10-fold CV comparison in Section V-B);
* :mod:`repro.modeling.dataset` — training-set assembly from traces;
* :mod:`repro.modeling.crossval` / :mod:`.metrics` — LOOCV / k-fold and
  MAPE;
* :mod:`repro.modeling.batched` — the batched model-evaluation engine
  (full-matrix forward/backward, grid-shaped prediction);
* :mod:`repro.modeling.model_cache` — content-addressed caching of
  trained model parameters in the campaign result store.
"""

from repro.modeling.scaler import StandardScaler
from repro.modeling.layers import Dense, ReLU
from repro.modeling.network import EnergyNetwork
from repro.modeling.adam import Adam
from repro.modeling.loss import mse, mse_gradient
from repro.modeling.training import TrainedModel, TrainingConfig, train_network
from repro.modeling.dataset import EnergyDataset, FEATURE_COUNTERS, build_dataset
from repro.modeling.selection import CounterSelection, select_counters
from repro.modeling.vif import mean_vif, variance_inflation_factors
from repro.modeling.regression import RegressionEnergyModel
from repro.modeling.crossval import (
    kfold_indices,
    kfold_mape,
    leave_one_out_mape,
    network_loocv_mape,
)
from repro.modeling.metrics import mape, mean_absolute_error
from repro.modeling.batched import (
    ENGINES,
    BatchedModelEvaluator,
    GridPrediction,
    predict_energy_grid,
)
from repro.modeling.model_cache import train_network_cached

__all__ = [
    "ENGINES",
    "BatchedModelEvaluator",
    "GridPrediction",
    "predict_energy_grid",
    "network_loocv_mape",
    "train_network_cached",
    "StandardScaler",
    "Dense",
    "ReLU",
    "EnergyNetwork",
    "Adam",
    "mse",
    "mse_gradient",
    "TrainingConfig",
    "TrainedModel",
    "train_network",
    "EnergyDataset",
    "FEATURE_COUNTERS",
    "build_dataset",
    "CounterSelection",
    "select_counters",
    "variance_inflation_factors",
    "mean_vif",
    "RegressionEnergyModel",
    "kfold_indices",
    "kfold_mape",
    "leave_one_out_mape",
    "mape",
    "mean_absolute_error",
]
