"""Variance Inflation Factor — the multicollinearity criterion of Table I.

VIF of feature ``j`` is ``1 / (1 - R_j^2)`` where ``R_j^2`` is the
coefficient of determination of regressing feature ``j`` on all other
features.  Mean VIF well below 10 indicates the selected counters are
close to independent [28].
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError

#: Conventional multicollinearity alarm threshold.
VIF_THRESHOLD = 10.0


def variance_inflation_factors(x: np.ndarray) -> np.ndarray:
    """VIF per column of ``x`` (shape ``(n_samples, n_features)``).

    With a single feature there is nothing to inflate; the result is
    ``[1.0]`` by convention (the paper lists "n/a" for the first
    selected counter).
    """
    x = np.asarray(x, dtype=float)
    if x.ndim != 2 or x.shape[0] < 3:
        raise ModelError(f"need a (n>=3, k) matrix for VIF, got {x.shape}")
    n, k = x.shape
    if k == 1:
        return np.array([1.0])
    vifs = np.empty(k)
    for j in range(k):
        y = x[:, j]
        others = np.delete(x, j, axis=1)
        a = np.column_stack([others, np.ones(n)])
        coef, *_ = np.linalg.lstsq(a, y, rcond=None)
        resid = y - a @ coef
        ss_res = float(resid @ resid)
        ss_tot = float(((y - y.mean()) ** 2).sum())
        if ss_tot == 0.0:
            vifs[j] = np.inf  # constant feature is degenerate
            continue
        r2 = 1.0 - ss_res / ss_tot
        vifs[j] = np.inf if r2 >= 1.0 else 1.0 / (1.0 - r2)
    return vifs


def mean_vif(x: np.ndarray) -> float:
    """Mean VIF over all features (the summary statistic of Table I)."""
    return float(np.mean(variance_inflation_factors(x)))
