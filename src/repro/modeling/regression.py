"""Regression baseline — the approach of Chadha et al. [24].

A linear least-squares model over the same nine inputs.  The paper
compares its 10-fold-CV MAPE (7.54) against the network's LOOCV MAPE
(5.20) and notes two drawbacks: random-index k-fold can leak benchmarks
between train and test, and tuning for *energy* with regression needs
separate power and time models, while one small network predicts energy
directly.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError
from repro.modeling.scaler import StandardScaler


class RegressionEnergyModel:
    """Ordinary least squares on standardised features (+ intercept)."""

    def __init__(self) -> None:
        self._scaler = StandardScaler()
        self._coef: np.ndarray | None = None

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "RegressionEnergyModel":
        features = np.asarray(features, dtype=float)
        targets = np.asarray(targets, dtype=float)
        if features.ndim != 2 or features.shape[0] != targets.shape[0]:
            raise ModelError(
                f"inconsistent shapes: {features.shape} vs {targets.shape}"
            )
        x = self._scaler.fit_transform(features)
        a = np.column_stack([x, np.ones(x.shape[0])])
        self._coef, *_ = np.linalg.lstsq(a, targets, rcond=None)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        if self._coef is None:
            raise ModelError("regression model is not fitted")
        x = self._scaler.transform(np.atleast_2d(np.asarray(features, dtype=float)))
        a = np.column_stack([x, np.ones(x.shape[0])])
        return a @ self._coef

    @property
    def coefficients(self) -> np.ndarray:
        if self._coef is None:
            raise ModelError("regression model is not fitted")
        return self._coef.copy()
