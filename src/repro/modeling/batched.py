"""Batched model-evaluation engine: full-matrix MLP forward/backward.

The tuning layer keeps asking the energy network the same shape of
question: *given counter rates for a region (or a whole benchmark
series), what is the predicted normalized energy at every core x uncore
frequency point?*  The historical ("pointwise") path answered it one
rate-vector at a time — a Python loop assembling one feature row per
grid point, then one :meth:`~repro.modeling.network.EnergyNetwork.forward`
call per region/series/fold.

This module answers it for *all* rate vectors at once:

* :func:`stack_grid_features` builds the ``(rows * grid, features)``
  input tensor with two strided copies (``repeat`` + ``tile``) instead
  of ``rows * grid`` Python-level ``np.concatenate`` calls;
* :func:`forward_batch` / :func:`backward_batch` run the whole stack
  through the 9-5-5-1 network in a handful of matmuls, reusing the
  exact per-layer operations of :class:`~repro.modeling.layers.Dense`
  and :class:`~repro.modeling.layers.ReLU`;
* :class:`BatchedModelEvaluator` wraps a trained model (network +
  scaler) and exposes grid-shaped prediction.

Numerical contract: evaluating a stacked matrix is **bit-identical** to
evaluating the same rows in any chunking with >= 2 rows per call — the
per-element dot products of a matmul do not depend on the number of
rows — so batched grid predictions, LOOCV MAPE values and static
configuration selections equal the pointwise engine's to the last bit
(pinned by ``tests/modeling/test_batched_equivalence.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import config
from repro.errors import ModelError
from repro.modeling.training import TrainedModel

#: The model-evaluation engines the tuning layer can run on.
ENGINES: tuple[str, ...] = ("pointwise", "batched")


def validate_engine(engine: str) -> str:
    if engine not in ENGINES:
        raise ModelError(
            f"unknown model-evaluation engine {engine!r}; known: {ENGINES}"
        )
    return engine


# ---------------------------------------------------------------------------
# Grid assembly
# ---------------------------------------------------------------------------

def frequency_grid() -> tuple[tuple[tuple[float, float], ...], np.ndarray]:
    """The full CF x UCF grid, in the tuning layer's canonical order.

    Returns the points as tuples (for result labelling) and as a
    ``(grid, 2)`` float matrix (for feature assembly).  The order —
    core frequency outer, uncore inner — matches every historical
    pointwise loop, so argmin tie-breaking is identical.
    """
    points = tuple(
        (cf, ucf)
        for cf in config.CORE_FREQUENCIES_GHZ
        for ucf in config.UNCORE_FREQUENCIES_GHZ
    )
    return points, np.asarray(points, dtype=float)


def stack_grid_features(rates: np.ndarray, grid: np.ndarray) -> np.ndarray:
    """Stacked feature matrix for every (rate row, grid point) pair.

    ``rates`` is ``(rows, counters)`` (a single vector is promoted);
    the result is ``(rows * grid, counters + 2)`` with the grid varying
    fastest — row ``r * len(grid) + g`` is ``[rates[r], *grid[g]]``,
    exactly the row the pointwise loop builds with ``np.concatenate``.
    """
    rates = np.atleast_2d(np.asarray(rates, dtype=float))
    if rates.ndim != 2:
        raise ModelError(f"rates must be a vector or matrix, got {rates.shape}")
    grid = np.asarray(grid, dtype=float)
    rows, g = rates.shape[0], grid.shape[0]
    features = np.empty((rows * g, rates.shape[1] + grid.shape[1]))
    features[:, : rates.shape[1]] = np.repeat(rates, g, axis=0)
    features[:, rates.shape[1] :] = np.tile(grid, (rows, 1))
    return features


# ---------------------------------------------------------------------------
# Full-matrix forward / backward
# ---------------------------------------------------------------------------

def forward_batch(weights: list[np.ndarray], x: np.ndarray) -> np.ndarray:
    """One forward pass of the whole stack through the MLP.

    ``weights`` is the flat ``[W1, b1, W2, b2, ...]`` list of
    :attr:`~repro.modeling.network.EnergyNetwork.parameters`; ReLU is
    applied between dense layers (not after the last), mirroring the
    layer stack of Figure 4 operation for operation.
    """
    if len(weights) < 2 or len(weights) % 2:
        raise ModelError(f"weights must be [W, b] pairs, got {len(weights)} arrays")
    out = np.asarray(x, dtype=float)
    n_dense = len(weights) // 2
    for i in range(n_dense):
        out = out @ weights[2 * i] + weights[2 * i + 1]
        if i != n_dense - 1:
            out = np.where(out > 0, out, 0.0)
    return out


def backward_batch(
    weights: list[np.ndarray], x: np.ndarray, grad_out: np.ndarray
) -> list[np.ndarray]:
    """Gradients of all parameters for the whole stack in one pass.

    Equivalent to running :meth:`EnergyNetwork.forward` then
    :meth:`EnergyNetwork.backward` on the same batch: the returned list
    is aligned with the ``[W1, b1, W2, b2, ...]`` parameter layout.
    """
    if len(weights) < 2 or len(weights) % 2:
        raise ModelError(f"weights must be [W, b] pairs, got {len(weights)} arrays")
    out = np.asarray(x, dtype=float)
    n_dense = len(weights) // 2
    inputs: list[np.ndarray] = []
    masks: list[np.ndarray] = []
    for i in range(n_dense):
        inputs.append(out)
        out = out @ weights[2 * i] + weights[2 * i + 1]
        if i != n_dense - 1:
            mask = out > 0
            masks.append(mask)
            out = np.where(mask, out, 0.0)
    grads: list[np.ndarray] = [np.empty(0)] * len(weights)
    grad = np.asarray(grad_out, dtype=float)
    for i in reversed(range(n_dense)):
        grads[2 * i] = inputs[i].T @ grad
        grads[2 * i + 1] = grad.sum(axis=0)
        if i > 0:
            grad = (grad @ weights[2 * i].T) * masks[i - 1]
    return grads


# ---------------------------------------------------------------------------
# Grid-shaped prediction
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class GridPrediction:
    """Predicted energies over the full frequency grid for many rows.

    ``energies[r, g]`` is the prediction for rate row ``r`` at grid
    point ``points[g]``; ``labels[r]`` names the row (a region, a
    ``(benchmark, threads)`` series, ...).
    """

    labels: tuple
    points: tuple[tuple[float, float], ...]
    energies: np.ndarray

    def __post_init__(self):
        if self.energies.shape != (len(self.labels), len(self.points)):
            raise ModelError(
                f"energies shape {self.energies.shape} inconsistent with "
                f"{len(self.labels)} labels x {len(self.points)} points"
            )

    def row(self, label) -> np.ndarray:
        """The prediction vector for one labelled row."""
        try:
            index = self.labels.index(label)
        except ValueError:
            raise ModelError(f"no grid row labelled {label!r}") from None
        return self.energies[index]

    def best_indices(self) -> np.ndarray:
        """Per-row argmin (first minimum, like the pointwise loops)."""
        return np.argmin(self.energies, axis=1)

    def best(self) -> dict:
        """Per label: ``(best (cf, ucf), predicted energy)``."""
        indices = self.best_indices()
        return {
            label: (self.points[int(i)], float(self.energies[r, int(i)]))
            for r, (label, i) in enumerate(zip(self.labels, indices))
        }

    def as_dict(self, label) -> dict[tuple[float, float], float]:
        """One row as the ``{(cf, ucf): energy}`` mapping the tuning
        plugin historically built point by point."""
        row = self.row(label)
        return {point: float(row[g]) for g, point in enumerate(self.points)}


class BatchedModelEvaluator:
    """Full-matrix prediction over a trained energy model.

    Holds references to the model's weight arrays and scaler, so a
    single evaluator can answer any number of grid queries without
    touching the layer objects (and without their per-call caches).
    """

    def __init__(self, model: TrainedModel):
        self._model = model
        self._weights = model.network.parameters
        self._scaler = model.scaler

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predictions as a flat vector, one per feature row."""
        x = self._scaler.transform(np.atleast_2d(np.asarray(features, dtype=float)))
        return forward_batch(self._weights, x)[:, 0]

    def predict_grid(self, rates: np.ndarray, labels=None) -> GridPrediction:
        """Predict the full frequency grid for every rate row at once."""
        rates = np.atleast_2d(np.asarray(rates, dtype=float))
        points, grid = frequency_grid()
        features = stack_grid_features(rates, grid)
        energies = self.predict(features).reshape(rates.shape[0], len(points))
        if labels is None:
            labels = tuple(range(rates.shape[0]))
        return GridPrediction(tuple(labels), points, energies)


def _pointwise_grid(model: TrainedModel, rates: np.ndarray, labels) -> GridPrediction:
    """The historical per-row path: Python row assembly + one forward
    per rate vector.  Kept as the reference the batched engine is pinned
    against, and selectable everywhere via ``engine="pointwise"``."""
    rates = np.atleast_2d(np.asarray(rates, dtype=float))
    points, _ = frequency_grid()
    per_row = []
    for vec in rates:
        rows = []
        for cf in config.CORE_FREQUENCIES_GHZ:
            for ucf in config.UNCORE_FREQUENCIES_GHZ:
                rows.append(np.concatenate([vec, [cf, ucf]]))
        per_row.append(model.predict(np.asarray(rows)))
    if labels is None:
        labels = tuple(range(rates.shape[0]))
    return GridPrediction(tuple(labels), points, np.asarray(per_row))


def predict_energy_grid(
    model: TrainedModel,
    rates: np.ndarray,
    *,
    labels=None,
    engine: str = "batched",
) -> GridPrediction:
    """Grid-shaped prediction through the selected evaluation engine.

    Both engines return bit-identical :class:`GridPrediction` values;
    ``batched`` does it in a handful of matmuls, ``pointwise`` replays
    the historical per-row loop.
    """
    validate_engine(engine)
    if engine == "batched":
        return BatchedModelEvaluator(model).predict_grid(rates, labels=labels)
    return _pointwise_grid(model, rates, labels)
