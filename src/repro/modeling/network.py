"""The paper's energy network (Figure 4).

A 2-hidden-layer fully-connected network: nine inputs (seven PAPI counter
rates + core frequency + uncore frequency), two hidden layers of five
neurons, one output neuron predicting normalized node energy.  ReLU
activations, He initialisation, trained with ADAM on MSE.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError
from repro.modeling.layers import Dense, ReLU
from repro.util.rng import rng_for

#: Architecture constants of Figure 4.
INPUT_NEURONS = 9
HIDDEN_NEURONS = 5
OUTPUT_NEURONS = 1


class EnergyNetwork:
    """9 -> 5 -> 5 -> 1 feed-forward regression network."""

    def __init__(
        self,
        n_inputs: int = INPUT_NEURONS,
        *,
        hidden: int = HIDDEN_NEURONS,
        seed: int = 0,
    ):
        if n_inputs <= 0:
            raise ModelError("network needs at least one input")
        rng = rng_for("energy-network", n_inputs, hidden, seed=seed)
        self.layers = [
            Dense(n_inputs, hidden, rng=rng),
            ReLU(),
            Dense(hidden, hidden, rng=rng),
            ReLU(),
            Dense(hidden, OUTPUT_NEURONS, rng=rng),
        ]
        self.n_inputs = n_inputs

    # ------------------------------------------------------------------
    @property
    def parameters(self) -> list[np.ndarray]:
        return [p for layer in self.layers for p in layer.parameters]

    @property
    def gradients(self) -> list[np.ndarray]:
        return [g for layer in self.layers for g in layer.gradients]

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Predict; returns shape ``(n, 1)`` for input ``(n, n_inputs)``."""
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            x = x[None, :]
        if x.shape[1] != self.n_inputs:
            raise ModelError(
                f"network expects {self.n_inputs} features, got {x.shape[1]}"
            )
        out = x
        for layer in self.layers:
            out = layer.forward(out)
        return out

    def backward(self, grad_out: np.ndarray) -> None:
        grad = grad_out
        for layer in reversed(self.layers):
            grad = layer.backward(grad)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Prediction as a flat vector."""
        return self.forward(x)[:, 0]

    # -- weight (de)serialisation — the tuning plugin embeds these ---------
    def get_weights(self) -> list[np.ndarray]:
        return [p.copy() for p in self.parameters]

    def set_weights(self, weights: list[np.ndarray]) -> None:
        params = self.parameters
        if len(weights) != len(params):
            raise ModelError(
                f"expected {len(params)} weight arrays, got {len(weights)}"
            )
        for p, w in zip(params, weights):
            if p.shape != np.asarray(w).shape:
                raise ModelError(f"weight shape {np.shape(w)} != {p.shape}")
            p[...] = w

    def to_dict(self) -> dict:
        return {
            "n_inputs": self.n_inputs,
            "weights": [w.tolist() for w in self.get_weights()],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "EnergyNetwork":
        net = cls(n_inputs=data["n_inputs"])
        net.set_weights([np.asarray(w, dtype=float) for w in data["weights"]])
        return net
