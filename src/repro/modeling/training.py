"""Training loop for the energy network.

Section V-B: stochastic optimisation with ADAM, default parameters,
learning rate 1e-3; five epochs for the LOOCV study, ten for the final
deployed model (more epochs over-fit).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.modeling.adam import Adam
from repro.modeling.loss import mse, mse_gradient
from repro.modeling.network import EnergyNetwork
from repro.modeling.scaler import StandardScaler
from repro.util.rng import rng_for


@dataclass(frozen=True)
class TrainingConfig:
    """Hyper-parameters (paper defaults)."""

    epochs: int = 5
    learning_rate: float = 1e-3
    batch_size: int = 1  # stochastic updates
    seed: int = 0

    def __post_init__(self):
        if self.epochs <= 0 or self.batch_size <= 0:
            raise ModelError("epochs and batch size must be positive")
        if self.learning_rate <= 0:
            raise ModelError("learning rate must be positive")


@dataclass
class TrainedModel:
    """Network plus the scaler fitted on its training set."""

    network: EnergyNetwork
    scaler: StandardScaler
    losses: list[float]

    def predict(self, features: np.ndarray) -> np.ndarray:
        return self.network.predict(self.scaler.transform(np.atleast_2d(features)))


def train_network(
    features: np.ndarray,
    targets: np.ndarray,
    *,
    config: TrainingConfig = TrainingConfig(),
    network: EnergyNetwork | None = None,
) -> TrainedModel:
    """Standardise features, then fit the network with ADAM on MSE.

    Returns the trained model with its scaler and the per-epoch loss
    trajectory (useful for over-fitting analysis).
    """
    features = np.asarray(features, dtype=float)
    targets = np.asarray(targets, dtype=float)
    if features.ndim != 2 or features.shape[0] != targets.shape[0]:
        raise ModelError(
            f"inconsistent training shapes: {features.shape} vs {targets.shape}"
        )
    scaler = StandardScaler()
    x = scaler.fit_transform(features)
    y = targets[:, None]
    net = network or EnergyNetwork(n_inputs=x.shape[1], seed=config.seed)
    # The gradient buffers have stable identity (layers write in place),
    # so they bind to the optimiser once; step() rebuilds nothing.
    optimizer = Adam(
        net.parameters,
        gradients=net.gradients,
        learning_rate=config.learning_rate,
    )
    rng = rng_for("training-shuffle", seed=config.seed)
    n = x.shape[0]
    losses: list[float] = []
    for _epoch in range(config.epochs):
        order = rng.permutation(n)
        epoch_loss = 0.0
        batches = 0
        for start in range(0, n, config.batch_size):
            idx = order[start : start + config.batch_size]
            xb, yb = x[idx], y[idx]
            pred = net.forward(xb)
            epoch_loss += mse(pred, yb)
            batches += 1
            net.backward(mse_gradient(pred, yb))
            optimizer.step()
        losses.append(epoch_loss / batches)
    return TrainedModel(network=net, scaler=scaler, losses=losses)
