"""Optimal PAPI counter selection (Table I; algorithm of Chadha et al. [24]).

Greedy forward stepwise regression: starting from the frequency
covariates (CF, UCF — always in the base model, since the dependent
variable is normalized energy across frequency sweeps), repeatedly add
the counter rate that most improves the adjusted R² of an OLS fit,
rejecting candidates that would push the selected counters' VIF above
the multicollinearity threshold.  Stops when no candidate improves
adjusted R² by more than ``tolerance`` or ``max_counters`` is reached.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.modeling.vif import VIF_THRESHOLD, variance_inflation_factors

#: Paper selects seven counters.
DEFAULT_MAX_COUNTERS = 7


@dataclass(frozen=True)
class CounterSelection:
    """Result of the selection algorithm."""

    counters: tuple[str, ...]
    vifs: tuple[float, ...]
    adjusted_r2: float

    @property
    def mean_vif(self) -> float:
        return float(np.mean(self.vifs))


def _adjusted_r2(x: np.ndarray, y: np.ndarray) -> float:
    n, k = x.shape
    if n <= k + 1:
        return -np.inf
    a = np.column_stack([x, np.ones(n)])
    coef, *_ = np.linalg.lstsq(a, y, rcond=None)
    resid = y - a @ coef
    ss_res = float(resid @ resid)
    ss_tot = float(((y - y.mean()) ** 2).sum())
    if ss_tot == 0:
        return -np.inf
    r2 = 1.0 - ss_res / ss_tot
    return 1.0 - (1.0 - r2) * (n - 1) / (n - k - 1)


def _standardise(x: np.ndarray) -> np.ndarray:
    mean = x.mean(axis=0)
    std = x.std(axis=0)
    std[std == 0.0] = 1.0
    return (x - mean) / std


def select_counters(
    counter_rates: np.ndarray,
    counter_names: list[str] | tuple[str, ...],
    frequencies: np.ndarray,
    targets: np.ndarray,
    *,
    max_counters: int = DEFAULT_MAX_COUNTERS,
    tolerance: float = 1e-4,
    vif_limit: float = VIF_THRESHOLD,
) -> CounterSelection:
    """Run the stepwise selection.

    Parameters
    ----------
    counter_rates:
        Candidate features, shape ``(n_samples, n_counters)``.
    counter_names:
        Names aligned with the columns of ``counter_rates``.
    frequencies:
        The always-included covariates (CF, UCF), shape ``(n_samples, 2)``.
    targets:
        Normalized energy, shape ``(n_samples,)``.
    """
    counter_rates = np.asarray(counter_rates, dtype=float)
    frequencies = np.asarray(frequencies, dtype=float)
    targets = np.asarray(targets, dtype=float)
    if counter_rates.shape[1] != len(counter_names):
        raise ModelError("counter_names misaligned with counter_rates")
    if counter_rates.shape[0] != targets.shape[0]:
        raise ModelError("sample count mismatch")
    if max_counters <= 0:
        raise ModelError("max_counters must be positive")

    rates = _standardise(counter_rates)
    freqs = _standardise(frequencies)

    selected: list[int] = []
    current_r2 = _adjusted_r2(freqs, targets)
    while len(selected) < max_counters:
        best_gain, best_idx, best_r2 = tolerance, None, current_r2
        for j in range(rates.shape[1]):
            if j in selected:
                continue
            candidate_cols = rates[:, selected + [j]]
            # Multicollinearity guard: reject candidates that inflate VIF.
            if len(selected) >= 1:
                vifs = variance_inflation_factors(candidate_cols)
                if np.any(vifs > vif_limit):
                    continue
            x = np.column_stack([freqs, candidate_cols])
            r2 = _adjusted_r2(x, targets)
            gain = r2 - current_r2
            if gain > best_gain:
                best_gain, best_idx, best_r2 = gain, j, r2
        if best_idx is None:
            break
        selected.append(best_idx)
        current_r2 = best_r2

    if not selected:
        raise ModelError("selection found no informative counters")
    chosen = rates[:, selected]
    vifs = (
        variance_inflation_factors(chosen)
        if len(selected) > 1
        else np.array([1.0])
    )
    return CounterSelection(
        counters=tuple(counter_names[i] for i in selected),
        vifs=tuple(float(v) for v in vifs),
        adjusted_r2=float(current_r2),
    )
