"""Optimal PAPI counter selection (Table I; algorithm of Chadha et al. [24]).

Greedy forward stepwise regression: starting from the frequency
covariates (CF, UCF — always in the base model, since the dependent
variable is normalized energy across frequency sweeps), repeatedly add
the counter rate that most improves the adjusted R² of an OLS fit,
rejecting candidates that would push the selected counters' VIF above
the multicollinearity threshold.  Stops when no candidate improves
adjusted R² by more than ``tolerance`` or ``max_counters`` is reached.

Two scoring engines: ``pointwise`` fits one OLS system per candidate
per round (the historical loop); ``batched`` scores *every* candidate
of a round in one stacked normal-equations solve — the grid-shaped
evaluation the rest of the tuning layer uses, an order of magnitude
fewer Python-level linear solves for the 40-counter preset table.

Equivalence caveat — unlike the network's grid predictions, which are
bit-identical across engines, the normal-equations scorer differs from
``lstsq`` (SVD) in the last float bits (~1e-16 relative).  The
*selected counters* agree whenever gains are separated from
``tolerance`` by more than that noise (pinned on real and synthetic
data by the equivalence tests); the reported ``adjusted_r2`` is equal
only to ``np.isclose`` precision.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.modeling.vif import VIF_THRESHOLD, variance_inflation_factors

#: Paper selects seven counters.
DEFAULT_MAX_COUNTERS = 7


@dataclass(frozen=True)
class CounterSelection:
    """Result of the selection algorithm."""

    counters: tuple[str, ...]
    vifs: tuple[float, ...]
    adjusted_r2: float

    @property
    def mean_vif(self) -> float:
        return float(np.mean(self.vifs))


def _adjusted_r2(x: np.ndarray, y: np.ndarray) -> float:
    n, k = x.shape
    if n <= k + 1:
        return -np.inf
    a = np.column_stack([x, np.ones(n)])
    coef, *_ = np.linalg.lstsq(a, y, rcond=None)
    resid = y - a @ coef
    ss_res = float(resid @ resid)
    ss_tot = float(((y - y.mean()) ** 2).sum())
    if ss_tot == 0:
        return -np.inf
    r2 = 1.0 - ss_res / ss_tot
    return 1.0 - (1.0 - r2) * (n - 1) / (n - k - 1)


def _standardise(x: np.ndarray) -> np.ndarray:
    mean = x.mean(axis=0)
    std = x.std(axis=0)
    std[std == 0.0] = 1.0
    return (x - mean) / std


def _batched_adjusted_r2(
    base: np.ndarray, candidates: np.ndarray, y: np.ndarray
) -> np.ndarray:
    """Adjusted R² of ``[base, candidate, intercept]`` OLS fits for every
    candidate column in one stacked normal-equations solve.

    Falls back to the per-candidate ``lstsq`` loop when any system is
    singular (a candidate perfectly collinear with the base model).
    """
    n, b = base.shape
    k = b + 1  # regressors excluding the intercept
    n_cand = candidates.shape[1]
    if n <= k + 1:
        return np.full(n_cand, -np.inf)
    ss_tot = float(((y - y.mean()) ** 2).sum())
    if ss_tot == 0:
        return np.full(n_cand, -np.inf)
    xa = np.column_stack([base, np.ones(n)])  # (n, p) with p = b + 1
    p = xa.shape[1]
    gram = xa.T @ xa
    cross = xa.T @ candidates  # (p, n_cand)
    diag = np.einsum("nj,nj->j", candidates, candidates)
    xa_y = xa.T @ y
    cand_y = candidates.T @ y
    systems = np.empty((n_cand, p + 1, p + 1))
    systems[:, :p, :p] = gram
    systems[:, :p, p] = cross.T
    systems[:, p, :p] = cross.T
    systems[:, p, p] = diag
    rhs = np.empty((n_cand, p + 1))
    rhs[:, :p] = xa_y
    rhs[:, p] = cand_y
    try:
        beta = np.linalg.solve(systems, rhs[:, :, None])[:, :, 0]
    except np.linalg.LinAlgError:
        return np.array(
            [
                _adjusted_r2(np.column_stack([base, candidates[:, j]]), y)
                for j in range(n_cand)
            ]
        )
    ss_res = float(y @ y) - np.einsum("jp,jp->j", beta, rhs)
    r2 = 1.0 - ss_res / ss_tot
    return 1.0 - (1.0 - r2) * (n - 1) / (n - k - 1)


def select_counters(
    counter_rates: np.ndarray,
    counter_names: list[str] | tuple[str, ...],
    frequencies: np.ndarray,
    targets: np.ndarray,
    *,
    max_counters: int = DEFAULT_MAX_COUNTERS,
    tolerance: float = 1e-4,
    vif_limit: float = VIF_THRESHOLD,
    engine: str = "batched",
) -> CounterSelection:
    """Run the stepwise selection.

    Parameters
    ----------
    counter_rates:
        Candidate features, shape ``(n_samples, n_counters)``.
    counter_names:
        Names aligned with the columns of ``counter_rates``.
    frequencies:
        The always-included covariates (CF, UCF), shape ``(n_samples, 2)``.
    targets:
        Normalized energy, shape ``(n_samples,)``.
    engine:
        ``"batched"`` scores each round's surviving candidates in one
        stacked solve; ``"pointwise"`` fits them one at a time.  Both
        select the same counters (pinned by the equivalence tests).
    """
    if engine not in ("pointwise", "batched"):
        raise ModelError(f"unknown selection engine {engine!r}")
    counter_rates = np.asarray(counter_rates, dtype=float)
    frequencies = np.asarray(frequencies, dtype=float)
    targets = np.asarray(targets, dtype=float)
    if counter_rates.shape[1] != len(counter_names):
        raise ModelError("counter_names misaligned with counter_rates")
    if counter_rates.shape[0] != targets.shape[0]:
        raise ModelError("sample count mismatch")
    if max_counters <= 0:
        raise ModelError("max_counters must be positive")

    rates = _standardise(counter_rates)
    freqs = _standardise(frequencies)

    selected: list[int] = []
    current_r2 = _adjusted_r2(freqs, targets)
    while len(selected) < max_counters:
        # Multicollinearity guard: reject candidates that inflate VIF.
        eligible = []
        for j in range(rates.shape[1]):
            if j in selected:
                continue
            if len(selected) >= 1:
                vifs = variance_inflation_factors(rates[:, selected + [j]])
                if np.any(vifs > vif_limit):
                    continue
            eligible.append(j)
        if not eligible:
            break

        if engine == "batched":
            base = np.column_stack([freqs, rates[:, selected]])
            scores = _batched_adjusted_r2(base, rates[:, eligible], targets)
        else:
            scores = np.array(
                [
                    _adjusted_r2(
                        np.column_stack([freqs, rates[:, selected + [j]]]),
                        targets,
                    )
                    for j in eligible
                ]
            )

        best_gain, best_idx, best_r2 = tolerance, None, current_r2
        for j, r2 in zip(eligible, scores):
            gain = r2 - current_r2
            if gain > best_gain:
                best_gain, best_idx, best_r2 = gain, j, float(r2)
        if best_idx is None:
            break
        selected.append(best_idx)
        current_r2 = best_r2

    if not selected:
        raise ModelError("selection found no informative counters")
    chosen = rates[:, selected]
    vifs = (
        variance_inflation_factors(chosen)
        if len(selected) > 1
        else np.array([1.0])
    )
    return CounterSelection(
        counters=tuple(counter_names[i] for i in selected),
        vifs=tuple(float(v) for v in vifs),
        adjusted_r2=float(current_r2),
    )
