"""Feature standardisation (zero mean, unit variance).

Section IV-C: "We standardize and center our input data by removing the
mean and scaling to unit variance ... The mean and scaling information is
determined from the applications in our training set."
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError


class StandardScaler:
    """Per-feature standardisation fit on the training set only."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "StandardScaler":
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[0] == 0:
            raise ModelError(f"scaler expects a non-empty 2-D matrix, got {x.shape}")
        self.mean_ = x.mean(axis=0)
        scale = x.std(axis=0)
        # Constant features scale to 1 so transform stays finite.
        scale[scale == 0.0] = 1.0
        self.scale_ = scale
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise ModelError("scaler is not fitted")
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[1] != self.mean_.shape[0]:
            raise ModelError(
                f"expected {self.mean_.shape[0]} features, got shape {x.shape}"
            )
        return (x - self.mean_) / self.scale_

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)

    def to_dict(self) -> dict:
        if self.mean_ is None or self.scale_ is None:
            raise ModelError("scaler is not fitted")
        return {"mean": self.mean_.tolist(), "scale": self.scale_.tolist()}

    @classmethod
    def from_dict(cls, data: dict) -> "StandardScaler":
        scaler = cls()
        scaler.mean_ = np.asarray(data["mean"], dtype=float)
        scaler.scale_ = np.asarray(data["scale"], dtype=float)
        return scaler
