"""Content-addressed caching of trained model parameters.

Training the energy network is deterministic: the weights are a pure
function of (training features, training targets, hyper-parameters,
seed).  That makes trained models cacheable in the same content-addressed
:class:`~repro.campaign.store.ResultStore` that already holds simulation
results — keyed by the dataset digest and the full
:class:`~repro.modeling.training.TrainingConfig`, so a cache hit is
guaranteed to be bit-identical to retraining (JSON round-trips float64
exactly via shortest-repr).

The LOOCV study retrains one model per held-out benchmark and the bench
harness retrains the deployed model every session; with this cache, warm
sessions rebuild every model from disk without a single ADAM step.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Any

import numpy as np

from repro.campaign.store import ResultStore, job_key
from repro.errors import CampaignError, ModelError
from repro.modeling.network import EnergyNetwork
from repro.modeling.scaler import StandardScaler
from repro.modeling.training import TrainedModel, TrainingConfig, train_network

#: Keys every cached model payload must carry; anything less was written
#: by an older schema and must not be silently rebuilt into a model.
MODEL_PAYLOAD_KEYS: tuple[str, ...] = ("network", "scaler", "losses")


def dataset_digest(features: np.ndarray, targets: np.ndarray) -> str:
    """Content hash of a training set (shape- and byte-exact)."""
    features = np.ascontiguousarray(np.asarray(features, dtype=float))
    targets = np.ascontiguousarray(np.asarray(targets, dtype=float))
    h = hashlib.blake2b(digest_size=16)
    h.update(repr(features.shape).encode())
    h.update(features.tobytes())
    h.update(repr(targets.shape).encode())
    h.update(targets.tobytes())
    return h.hexdigest()


def training_descriptor(digest: str, config: TrainingConfig) -> dict[str, Any]:
    """The store descriptor for one training run (hashed into its key)."""
    return {
        "mode": "train-model",
        "dataset": digest,
        "epochs": config.epochs,
        "learning_rate": config.learning_rate,
        "batch_size": config.batch_size,
        "seed": config.seed,
    }


def model_to_payload(model: TrainedModel) -> dict[str, Any]:
    """JSON-able parameters of a trained model (store record layout)."""
    return {
        "network": model.network.to_dict(),
        "scaler": model.scaler.to_dict(),
        "losses": list(model.losses),
    }


def model_from_payload(payload: dict[str, Any]) -> TrainedModel:
    """Rebuild a trained model from its cached parameters.

    Raises a clear :class:`~repro.errors.ModelError` when the payload
    does not match the current schema (e.g. an entry persisted by an
    older store layout) instead of a raw ``KeyError`` — including when
    only the *inner* network/scaler layout is outdated.
    """
    missing = [k for k in MODEL_PAYLOAD_KEYS if k not in payload]
    if missing:
        raise ModelError(
            f"cached model payload is missing keys {missing}: the entry "
            "was produced by an older store schema; delete the store "
            "file to retrain"
        )
    try:
        return TrainedModel(
            network=EnergyNetwork.from_dict(payload["network"]),
            scaler=StandardScaler.from_dict(payload["scaler"]),
            losses=[float(v) for v in payload["losses"]],
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ModelError(
            f"cached model payload does not match the current parameter "
            f"layout ({exc!r}): the entry was produced by an older store "
            "schema; delete the store file to retrain"
        ) from None


def train_network_cached(
    features: np.ndarray,
    targets: np.ndarray,
    *,
    config: TrainingConfig = TrainingConfig(),
    store: ResultStore | str | Path | None = None,
) -> TrainedModel:
    """Train, or recall bit-identical weights from the result store.

    With ``store=None`` this is exactly :func:`train_network`.  A path
    (any store backend — JSONL, SQLite, segment directory) is opened
    for the duration of the call and closed afterwards; an open
    :class:`ResultStore` is used as-is and left open.
    """
    if store is None:
        return train_network(features, targets, config=config)
    if not isinstance(store, ResultStore):
        with ResultStore(store) as opened:
            return train_network_cached(
                features, targets, config=config, store=opened
            )
    descriptor = training_descriptor(dataset_digest(features, targets), config)
    key = job_key(descriptor)
    cached = store.get(key)
    if cached is not None:
        try:
            return model_from_payload(cached)
        except ModelError as exc:
            # A recalled entry whose payload layout is stale is a store
            # problem, not a modelling one: surface the campaign error
            # the rest of the cache layer documents, naming the file.
            where = store.path if store.path is not None else "<in-memory store>"
            raise CampaignError(f"{exc} (store: {where})") from None
    model = train_network(features, targets, config=config)
    store.put(key, descriptor, model_to_payload(model))
    return model
