"""ADAM optimiser [Kingma & Ba 2014] with the paper's defaults.

Section V-B: "we use the default parameters of ADAM and a learning rate
of 1e-3".
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError


class Adam:
    """Adaptive moment estimation over a flat list of parameter arrays.

    ``gradients`` may be bound once at construction when the gradient
    arrays have stable identity (layers write into preallocated
    buffers); :meth:`step` then needs no arguments and the per-update
    list rebuild disappears from the training loop.
    """

    def __init__(
        self,
        parameters: list[np.ndarray],
        *,
        gradients: list[np.ndarray] | None = None,
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ):
        if learning_rate <= 0:
            raise ModelError("learning rate must be positive")
        if not (0 <= beta1 < 1 and 0 <= beta2 < 1):
            raise ModelError("betas must lie in [0, 1)")
        if gradients is not None and len(gradients) != len(parameters):
            raise ModelError(
                f"expected {len(parameters)} gradients, got {len(gradients)}"
            )
        self._params = parameters
        self._gradients = gradients
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._m = [np.zeros_like(p) for p in parameters]
        self._v = [np.zeros_like(p) for p in parameters]
        self._t = 0

    def step(self, gradients: list[np.ndarray] | None = None) -> None:
        """Apply one update; gradients default to the bound buffers."""
        if gradients is None:
            gradients = self._gradients
            if gradients is None:
                raise ModelError("no gradients passed and none bound")
        elif len(gradients) != len(self._params):
            raise ModelError(
                f"expected {len(self._params)} gradients, got {len(gradients)}"
            )
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        for p, g, m, v in zip(self._params, gradients, self._m, self._v):
            if g.shape != p.shape:
                raise ModelError(f"gradient shape {g.shape} != param {p.shape}")
            m *= b1
            m += (1 - b1) * g
            v *= b2
            v += (1 - b2) * g * g
            m_hat = m / (1 - b1**self._t)
            v_hat = v / (1 - b2**self._t)
            p -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)

    @property
    def steps_taken(self) -> int:
        return self._t
