"""Cross-validation: LOOCV over benchmarks, k-fold over samples.

The paper evaluates the network with leave-one-*benchmark*-out CV (each
step holds out every sample of one benchmark) and contrasts it with the
10-fold random-index CV of the regression baseline, which can place
samples of one benchmark in both train and test sets.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import ModelError
from repro.modeling.dataset import EnergyDataset
from repro.modeling.metrics import mape
from repro.util.rng import rng_for

#: fit_predict(train_x, train_y, test_x) -> predictions
FitPredict = Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray]


def leave_one_out_mape(
    dataset: EnergyDataset, fit_predict: FitPredict
) -> dict[str, float]:
    """LOOCV per benchmark: MAPE on each held-out benchmark (Figure 5)."""
    results: dict[str, float] = {}
    for bench in dataset.benchmarks:
        train, test = dataset.split({bench})
        pred = fit_predict(train.features, train.targets, test.features)
        results[bench] = mape(np.asarray(pred), test.targets)
    return results


def kfold_indices(
    n: int, k: int, *, seed: int = 0, shuffle: bool = True
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Random-index k-fold splits (the baseline's 10-fold CV)."""
    if not 2 <= k <= n:
        raise ModelError(f"need 2 <= k <= n, got k={k}, n={n}")
    idx = np.arange(n)
    if shuffle:
        idx = rng_for("kfold", n, k, seed=seed).permutation(n)
    folds = np.array_split(idx, k)
    splits = []
    for i in range(k):
        test = folds[i]
        train = np.concatenate([folds[j] for j in range(k) if j != i])
        splits.append((train, test))
    return splits


def kfold_mape(
    features: np.ndarray,
    targets: np.ndarray,
    fit_predict: FitPredict,
    *,
    k: int = 10,
    seed: int = 0,
) -> float:
    """Mean MAPE over random-index k-fold splits."""
    features = np.asarray(features, dtype=float)
    targets = np.asarray(targets, dtype=float)
    scores = []
    for train, test in kfold_indices(features.shape[0], k, seed=seed):
        pred = fit_predict(features[train], targets[train], features[test])
        scores.append(mape(np.asarray(pred), targets[test]))
    return float(np.mean(scores))
