"""Cross-validation: LOOCV over benchmarks, k-fold over samples.

The paper evaluates the network with leave-one-*benchmark*-out CV (each
step holds out every sample of one benchmark) and contrasts it with the
10-fold random-index CV of the regression baseline, which can place
samples of one benchmark in both train and test sets.

:func:`leave_one_out_mape` stays the generic serial harness for any
``fit_predict`` callable; :func:`network_loocv_mape` is the energy
network's production path: folds train as parallel jobs through a
:class:`~repro.campaign.engine.CampaignEngine`, trained parameters are
recalled from the content-addressed result store, and held-out
benchmarks are predicted through the batched evaluation engine — all
bit-identical to the serial pointwise loop.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.campaign.engine import CampaignEngine
from repro.campaign.store import job_key
from repro.errors import ModelError
from repro.modeling.batched import BatchedModelEvaluator, validate_engine
from repro.modeling.dataset import EnergyDataset
from repro.modeling.metrics import mape
from repro.modeling.model_cache import (
    dataset_digest,
    model_from_payload,
    model_to_payload,
    training_descriptor,
)
from repro.modeling.training import TrainedModel, TrainingConfig, train_network
from repro.util.rng import rng_for

#: fit_predict(train_x, train_y, test_x) -> predictions
FitPredict = Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray]


def leave_one_out_mape(
    dataset: EnergyDataset, fit_predict: FitPredict
) -> dict[str, float]:
    """LOOCV per benchmark: MAPE on each held-out benchmark (Figure 5)."""
    results: dict[str, float] = {}
    for bench in dataset.benchmarks:
        train, test = dataset.split({bench})
        pred = fit_predict(train.features, train.targets, test.features)
        results[bench] = mape(np.asarray(pred), test.targets)
    return results


# ---------------------------------------------------------------------------
# Network LOOCV: parallel folds, cached weights, batched prediction
# ---------------------------------------------------------------------------

def _train_fold(task: tuple[np.ndarray, np.ndarray, TrainingConfig]) -> dict:
    """Campaign worker: train one fold, return JSON-able parameters.

    Top-level (picklable) so :meth:`CampaignEngine.map_tasks` can fan
    folds out across the process pool; training is deterministic, so
    the payload is bit-identical wherever the fold runs.
    """
    features, targets, config = task
    return model_to_payload(train_network(features, targets, config=config))


def network_loocv_folds(
    dataset: EnergyDataset,
) -> list[tuple[str, EnergyDataset, EnergyDataset]]:
    """The leave-one-benchmark-out folds, in benchmark order."""
    return [
        (bench, *dataset.split({bench})) for bench in dataset.benchmarks
    ]


def network_loocv_mape(
    dataset: EnergyDataset,
    *,
    config: TrainingConfig = TrainingConfig(),
    engine: str = "batched",
    campaign: CampaignEngine | None = None,
) -> dict[str, float]:
    """Figure 5's network LOOCV through a model-evaluation engine.

    ``engine="pointwise"`` replays the historical serial loop (train one
    fold at a time, predict through the layer stack).  ``"batched"``
    dispatches fold training through ``campaign`` (parallel workers,
    trained weights recalled from / persisted to its result store) and
    predicts held-out benchmarks with the batched evaluator.  Both
    engines return bit-identical per-benchmark MAPE.
    """
    validate_engine(engine)
    folds = network_loocv_folds(dataset)
    if engine == "pointwise":
        results: dict[str, float] = {}
        for bench, train, test in folds:
            model = train_network(train.features, train.targets, config=config)
            results[bench] = mape(model.predict(test.features), test.targets)
        return results

    store = campaign.store if campaign is not None else None
    models: dict[str, TrainedModel | None] = {}
    pending: list[tuple[str, str, dict]] = []
    for bench, train, _test in folds:
        descriptor = training_descriptor(
            dataset_digest(train.features, train.targets), config
        )
        key = job_key(descriptor)
        cached = store.get(key) if store is not None else None
        if cached is not None:
            models[bench] = model_from_payload(cached)
        else:
            models[bench] = None
            pending.append((bench, key, descriptor))

    if pending:
        by_bench = {bench: (train, test) for bench, train, test in folds}
        tasks = [
            (by_bench[bench][0].features, by_bench[bench][0].targets, config)
            for bench, _key, _descriptor in pending
        ]
        if campaign is not None:
            payloads = campaign.map_tasks(_train_fold, tasks)
        else:
            payloads = [_train_fold(task) for task in tasks]
        for (bench, key, descriptor), payload in zip(pending, payloads):
            if store is not None:
                store.put(key, descriptor, payload)
            models[bench] = model_from_payload(payload)

    results = {}
    for bench, _train, test in folds:
        model = models[bench]
        assert model is not None
        evaluator = BatchedModelEvaluator(model)
        results[bench] = mape(evaluator.predict(test.features), test.targets)
    return results


def kfold_indices(
    n: int, k: int, *, seed: int = 0, shuffle: bool = True
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Random-index k-fold splits (the baseline's 10-fold CV)."""
    if not 2 <= k <= n:
        raise ModelError(f"need 2 <= k <= n, got k={k}, n={n}")
    idx = np.arange(n)
    if shuffle:
        idx = rng_for("kfold", n, k, seed=seed).permutation(n)
    folds = np.array_split(idx, k)
    splits = []
    for i in range(k):
        test = folds[i]
        train = np.concatenate([folds[j] for j in range(k) if j != i])
        splits.append((train, test))
    return splits


def kfold_mape(
    features: np.ndarray,
    targets: np.ndarray,
    fit_predict: FitPredict,
    *,
    k: int = 10,
    seed: int = 0,
) -> float:
    """Mean MAPE over random-index k-fold splits."""
    features = np.asarray(features, dtype=float)
    targets = np.asarray(targets, dtype=float)
    scores = []
    for train, test in kfold_indices(features.shape[0], k, seed=seed):
        pred = fit_predict(features[train], targets[train], features[test])
        scores.append(mape(np.asarray(pred), targets[test]))
    return float(np.mean(scores))
