"""Mean-squared-error objective (Section IV-C)."""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError


def _check(pred: np.ndarray, target: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    pred = np.asarray(pred, dtype=float)
    target = np.asarray(target, dtype=float)
    if pred.shape != target.shape:
        raise ModelError(f"shape mismatch: {pred.shape} vs {target.shape}")
    if pred.size == 0:
        raise ModelError("empty prediction batch")
    return pred, target


def mse(pred: np.ndarray, target: np.ndarray) -> float:
    """Mean squared error over the batch."""
    pred, target = _check(pred, target)
    return float(np.mean((pred - target) ** 2))


def mse_gradient(pred: np.ndarray, target: np.ndarray) -> np.ndarray:
    """Gradient of the MSE w.r.t. the predictions."""
    pred, target = _check(pred, target)
    return 2.0 * (pred - target) / pred.size
