"""Model accuracy metrics."""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError


def mape(pred: np.ndarray, target: np.ndarray) -> float:
    """Mean absolute percentage error (the paper's accuracy metric).

    Returned in percent, e.g. 5.2 means 5.2 %.
    """
    pred = np.asarray(pred, dtype=float)
    target = np.asarray(target, dtype=float)
    if pred.shape != target.shape or pred.size == 0:
        raise ModelError(f"bad shapes for MAPE: {pred.shape} vs {target.shape}")
    if np.any(target == 0):
        raise ModelError("MAPE undefined for zero targets")
    return float(np.mean(np.abs((pred - target) / target))) * 100.0


def mean_absolute_error(pred: np.ndarray, target: np.ndarray) -> float:
    pred = np.asarray(pred, dtype=float)
    target = np.asarray(target, dtype=float)
    if pred.shape != target.shape or pred.size == 0:
        raise ModelError(f"bad shapes for MAE: {pred.shape} vs {target.shape}")
    return float(np.mean(np.abs(pred - target)))
