"""Training-data acquisition (Section IV-A / V-B).

For every benchmark and (for OpenMP/hybrid codes) every thread count in
the 12..24 step-4 sweep:

* PAPI counter values are measured at the calibration operating point
  (2.0 GHz core, 1.5 GHz uncore), averaged over multiple runs (the PMU's
  4-counter limit forces multiplexed runs anyway), and normalised by the
  phase execution time — giving *rates*;
* node energy is measured across the DVFS sweep (all core frequencies at
  the calibration uncore frequency) and the UFS sweep (all uncore
  frequencies at the calibration core frequency), and normalised by the
  energy at the calibration point of the same series — giving ``E_norm``
  targets (run time is kept alongside for the power/time regression
  baseline).

One sample is ``[counter rates..., CF, UCF] -> E_norm``.  The thread
count is *not* an input of the network (Figure 4 has nine inputs); it
enters indirectly through the rates, which are measured at the same
thread count as the energies.

All simulations run through the :mod:`repro.campaign` engine: one plan
covering every (benchmark, threads) series is executed across the
worker pool, and an attached :class:`~repro.campaign.store.ResultStore`
lets repeated builds (benches, LOOCV retraining) reuse results instead
of re-simulating.  Campaign execution is bit-identical to the serial
per-run path these functions used before.  Each job itself executes
through the simulator's vectorized replay fast path
(:mod:`repro.execution.replay` — counter totals included), so dataset
builds are an order of magnitude faster per uncached job while
producing byte-identical stores.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import config
from repro.campaign.engine import CampaignEngine, CampaignResults, run_app_jobs
from repro.campaign.plan import (
    COUNTER_MEASUREMENT_RUNS,
    CampaignJob,
    counter_jobs,
    plan_dataset_campaign,
    sweep_jobs,
    sweep_operating_points,
    thread_series,
)
from repro.counters.papi import TABLE1_COUNTERS, preset
from repro.errors import ModelError
from repro.hardware.cluster import Cluster
from repro.workloads import registry
from repro.workloads.application import Application

__all__ = [
    "COUNTER_MEASUREMENT_RUNS",
    "EnergyDataset",
    "FEATURE_COUNTERS",
    "build_dataset",
    "measure_counter_rates",
    "measure_normalized_energy",
    "sweep_operating_points",
]

#: The model's counter features (Table I), in the paper's order.
FEATURE_COUNTERS: tuple[str, ...] = TABLE1_COUNTERS


@dataclass
class EnergyDataset:
    """Feature matrix, targets and per-sample benchmark labels."""

    features: np.ndarray          #: shape (n, n_counters + 2)
    targets: np.ndarray           #: normalized node energy, shape (n,)
    times: np.ndarray             #: normalized run time, shape (n,)
    groups: np.ndarray            #: benchmark name per sample, shape (n,)
    feature_names: tuple[str, ...]
    counter_rates: dict[str, np.ndarray]  #: per (benchmark, threads) rates

    def __post_init__(self):
        if self.features.ndim != 2:
            raise ModelError("features must be 2-D")
        n = self.features.shape[0]
        if not (
            self.targets.shape == (n,)
            and self.groups.shape == (n,)
            and self.times.shape == (n,)
        ):
            raise ModelError("features/targets/times/groups size mismatch")

    @property
    def benchmarks(self) -> tuple[str, ...]:
        seen: list[str] = []
        for g in self.groups:
            if g not in seen:
                seen.append(str(g))
        return tuple(seen)

    def subset(self, names) -> "EnergyDataset":
        """Rows belonging to the given benchmarks."""
        names = set(names)
        mask = np.array([g in names for g in self.groups])
        if not mask.any():
            raise ModelError(f"no samples for benchmarks {sorted(names)}")
        return EnergyDataset(
            features=self.features[mask],
            targets=self.targets[mask],
            times=self.times[mask],
            groups=self.groups[mask],
            feature_names=self.feature_names,
            counter_rates={
                k: v for k, v in self.counter_rates.items() if k[0] in names
            },
        )

    def split(self, holdout) -> tuple["EnergyDataset", "EnergyDataset"]:
        """(train, test) split by benchmark names."""
        holdout = set(holdout)
        rest = [b for b in self.benchmarks if b not in holdout]
        return self.subset(rest), self.subset(holdout)


# ---------------------------------------------------------------------------
# Campaign-result assembly
# ---------------------------------------------------------------------------

def _rates_from_results(
    results: CampaignResults,
    jobs: tuple[CampaignJob, ...],
    canonical: list[str],
    app_name: str,
) -> dict[str, float]:
    """Average counter totals over the repetition jobs, normalise by the
    accumulated phase time (Section IV-C)."""
    sums = {c: 0.0 for c in canonical}
    phase_time = 0.0
    for job in jobs:
        payload = results[job]
        for c in canonical:
            sums[c] += payload["totals"][c]
        phase_time += payload["phase_time_s"]
    if phase_time <= 0:
        raise ModelError(f"{app_name}: no phase time measured")
    return {c: sums[c] / phase_time for c in canonical}


def _normalized_energy_from_results(
    results: CampaignResults, jobs: tuple[CampaignJob, ...]
) -> dict[tuple[float, float], tuple[float, float]]:
    """Normalise each sweep point by the series' calibration point."""
    raw = {
        (job.core_freq_ghz, job.uncore_freq_ghz): (
            results[job]["node_energy_j"],
            results[job]["time_s"],
        )
        for job in jobs
    }
    cal_e, cal_t = raw[
        (config.CALIBRATION_CORE_FREQ_GHZ, config.CALIBRATION_UNCORE_FREQ_GHZ)
    ]
    return {p: (e / cal_e, t / cal_t) for p, (e, t) in raw.items()}


# ---------------------------------------------------------------------------
# Measurement front-ends
# ---------------------------------------------------------------------------

def measure_counter_rates(
    app: Application,
    cluster: Cluster,
    *,
    node_id: int = 0,
    threads: int | None = None,
    counters: tuple[str, ...] = FEATURE_COUNTERS,
    runs: int = COUNTER_MEASUREMENT_RUNS,
    seed: int = config.DEFAULT_SEED,
    engine: CampaignEngine | None = None,
) -> dict[str, float]:
    """Counter rates (events per second of phase time) at calibration.

    Registry benchmarks run through the campaign engine; custom or
    mutated application instances run serially against the live object.
    """
    cluster.check_node_id(node_id)
    canonical = [preset(c).name for c in counters]
    jobs = counter_jobs(
        app.name,
        threads=threads,
        counters=tuple(canonical),
        runs=runs,
        node_id=node_id,
        seed=seed,
        node_seed=cluster.seed,
    )
    results = run_app_jobs(jobs, app, cluster=cluster, engine=engine)
    return _rates_from_results(results, jobs, canonical, app.name)


def measure_normalized_energy(
    app: Application,
    cluster: Cluster,
    *,
    node_id: int = 0,
    threads: int | None = None,
    seed: int = config.DEFAULT_SEED,
    engine: CampaignEngine | None = None,
) -> dict[tuple[float, float], tuple[float, float]]:
    """Per sweep point: (normalized energy, normalized time).

    Both are relative to the calibration point of this series (same
    benchmark, same thread count).
    """
    cluster.check_node_id(node_id)
    jobs = sweep_jobs(
        app.name,
        threads=threads,
        node_id=node_id,
        seed=seed,
        node_seed=cluster.seed,
    )
    results = run_app_jobs(jobs, app, cluster=cluster, engine=engine)
    return _normalized_energy_from_results(results, jobs)


def build_dataset(
    benchmarks: tuple[str, ...] | list[str] | None = None,
    *,
    cluster: Cluster | None = None,
    node_id: int = 0,
    counters: tuple[str, ...] = FEATURE_COUNTERS,
    thread_counts: tuple[int, ...] | None = None,
    seed: int = config.DEFAULT_SEED,
    engine: CampaignEngine | None = None,
    fleet: bool = False,
) -> EnergyDataset:
    """Assemble the full training dataset for the given benchmarks.

    ``thread_counts`` defaults to the paper's 12..24 step-4 sweep for
    thread-tunable codes; MPI-only codes contribute one series at their
    fixed configuration.  The whole campaign (counter measurements and
    energy sweeps for every series) is submitted to the engine as one
    plan, so uncached jobs fan out across the worker pool together.
    ``fleet=True`` executes the plan's sweep rows through the batched
    fleet-kernel strategy (counter jobs keep the per-job path); the
    dataset is bit-identical either way.
    """
    if benchmarks is None:
        benchmarks = registry.benchmark_names()
    cluster = cluster or Cluster(4, seed=seed)
    cluster.check_node_id(node_id)
    canonical = [preset(c).name for c in counters]
    plan = plan_dataset_campaign(
        benchmarks,
        thread_counts=thread_counts,
        counters=tuple(canonical),
        node_id=node_id,
        seed=seed,
        node_seed=cluster.seed,
    )
    if engine is None:
        engine = CampaignEngine(topology=cluster.topology)
    results = engine.run(plan, fleet=fleet)

    rows, targets, times, groups = [], [], [], []
    counter_rates: dict[tuple[str, int], np.ndarray] = {}
    for name in benchmarks:
        app = registry.build(name)
        for threads in thread_series(app, thread_counts):
            cjobs = counter_jobs(
                name, threads=threads, counters=tuple(canonical),
                node_id=node_id, seed=seed, node_seed=cluster.seed,
            )
            rates = _rates_from_results(results, cjobs, canonical, name)
            rate_vec = np.array([rates[c] for c in canonical])
            counter_rates[(name, threads)] = rate_vec
            sjobs = sweep_jobs(
                name, threads=threads,
                node_id=node_id, seed=seed, node_seed=cluster.seed,
            )
            normalized = _normalized_energy_from_results(results, sjobs)
            for (cf, ucf), (e_norm, t_norm) in normalized.items():
                rows.append(np.concatenate([rate_vec, [cf, ucf]]))
                targets.append(e_norm)
                times.append(t_norm)
                groups.append(name)
    feature_names = tuple(preset(c).short_name for c in canonical) + ("CF", "UCF")
    return EnergyDataset(
        features=np.asarray(rows, dtype=float),
        targets=np.asarray(targets, dtype=float),
        times=np.asarray(times, dtype=float),
        groups=np.asarray(groups, dtype=object),
        feature_names=feature_names,
        counter_rates=counter_rates,
    )
