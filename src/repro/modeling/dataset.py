"""Training-data acquisition (Section IV-A / V-B).

For every benchmark and (for OpenMP/hybrid codes) every thread count in
the 12..24 step-4 sweep:

* PAPI counter values are measured at the calibration operating point
  (2.0 GHz core, 1.5 GHz uncore), averaged over multiple runs (the PMU's
  4-counter limit forces multiplexed runs anyway), and normalised by the
  phase execution time — giving *rates*;
* node energy is measured across the DVFS sweep (all core frequencies at
  the calibration uncore frequency) and the UFS sweep (all uncore
  frequencies at the calibration core frequency), and normalised by the
  energy at the calibration point of the same series — giving ``E_norm``
  targets (run time is kept alongside for the power/time regression
  baseline).

One sample is ``[counter rates..., CF, UCF] -> E_norm``.  The thread
count is *not* an input of the network (Figure 4 has nine inputs); it
enters indirectly through the rates, which are measured at the same
thread count as the energies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import config
from repro.counters.papi import TABLE1_COUNTERS, preset
from repro.errors import ModelError
from repro.execution.simulator import ExecutionSimulator
from repro.hardware.cluster import Cluster
from repro.workloads import registry
from repro.workloads.application import Application

#: The model's counter features (Table I), in the paper's order.
FEATURE_COUNTERS: tuple[str, ...] = TABLE1_COUNTERS

#: Runs averaged for the counter measurement.
COUNTER_MEASUREMENT_RUNS = 3


@dataclass
class EnergyDataset:
    """Feature matrix, targets and per-sample benchmark labels."""

    features: np.ndarray          #: shape (n, n_counters + 2)
    targets: np.ndarray           #: normalized node energy, shape (n,)
    times: np.ndarray             #: normalized run time, shape (n,)
    groups: np.ndarray            #: benchmark name per sample, shape (n,)
    feature_names: tuple[str, ...]
    counter_rates: dict[str, np.ndarray]  #: per (benchmark, threads) rates

    def __post_init__(self):
        if self.features.ndim != 2:
            raise ModelError("features must be 2-D")
        n = self.features.shape[0]
        if not (
            self.targets.shape == (n,)
            and self.groups.shape == (n,)
            and self.times.shape == (n,)
        ):
            raise ModelError("features/targets/times/groups size mismatch")

    @property
    def benchmarks(self) -> tuple[str, ...]:
        seen: list[str] = []
        for g in self.groups:
            if g not in seen:
                seen.append(str(g))
        return tuple(seen)

    def subset(self, names) -> "EnergyDataset":
        """Rows belonging to the given benchmarks."""
        names = set(names)
        mask = np.array([g in names for g in self.groups])
        if not mask.any():
            raise ModelError(f"no samples for benchmarks {sorted(names)}")
        return EnergyDataset(
            features=self.features[mask],
            targets=self.targets[mask],
            times=self.times[mask],
            groups=self.groups[mask],
            feature_names=self.feature_names,
            counter_rates={
                k: v for k, v in self.counter_rates.items() if k[0] in names
            },
        )

    def split(self, holdout) -> tuple["EnergyDataset", "EnergyDataset"]:
        """(train, test) split by benchmark names."""
        holdout = set(holdout)
        rest = [b for b in self.benchmarks if b not in holdout]
        return self.subset(rest), self.subset(holdout)


def measure_counter_rates(
    app: Application,
    cluster: Cluster,
    *,
    node_id: int = 0,
    threads: int | None = None,
    counters: tuple[str, ...] = FEATURE_COUNTERS,
    runs: int = COUNTER_MEASUREMENT_RUNS,
    seed: int = config.DEFAULT_SEED,
) -> dict[str, float]:
    """Counter rates (events per second of phase time) at calibration."""
    canonical = [preset(c).name for c in counters]
    sums = {c: 0.0 for c in canonical}
    phase_time = 0.0
    for r in range(runs):
        node = cluster.fresh_node(node_id)
        node.set_frequencies(
            config.CALIBRATION_CORE_FREQ_GHZ, config.CALIBRATION_UNCORE_FREQ_GHZ
        )

        class _Collect:
            def __init__(self):
                self.totals = {c: 0.0 for c in canonical}
                self.phase_time = 0.0

            def on_enter(self, region, iteration, time_s):
                pass

            def on_exit(self, region, iteration, time_s, metrics):
                # Counters are inclusive, so the phase record carries the
                # whole iteration's totals (Section III-C: the plugin
                # requests metrics for the phase region).
                if region.kind.value == "phase":
                    for c in canonical:
                        self.totals[c] += metrics.get(c, 0.0)
                    self.phase_time += metrics["time_s"]

        collector = _Collect()
        ExecutionSimulator(node, seed=seed).run(
            app,
            threads=threads,
            listeners=(collector,),
            collect_counters=True,
            run_key=("counters", threads, r),
        )
        for c in canonical:
            sums[c] += collector.totals[c]
        phase_time += collector.phase_time
    if phase_time <= 0:
        raise ModelError(f"{app.name}: no phase time measured")
    # Average across runs, then normalise by phase execution time
    # (Section IV-C: "PAPI counters are further normalized by dividing
    # them with the execution time of one phase iteration").
    return {c: sums[c] / phase_time for c in canonical}


def sweep_operating_points() -> list[tuple[float, float]]:
    """The paper's training sweep: DVFS axis then UFS axis."""
    points = [
        (cf, config.CALIBRATION_UNCORE_FREQ_GHZ)
        for cf in config.CORE_FREQUENCIES_GHZ
    ]
    points += [
        (config.CALIBRATION_CORE_FREQ_GHZ, ucf)
        for ucf in config.UNCORE_FREQUENCIES_GHZ
        if (config.CALIBRATION_CORE_FREQ_GHZ, ucf) not in points
    ]
    return points


def measure_normalized_energy(
    app: Application,
    cluster: Cluster,
    *,
    node_id: int = 0,
    threads: int | None = None,
    seed: int = config.DEFAULT_SEED,
) -> dict[tuple[float, float], tuple[float, float]]:
    """Per sweep point: (normalized energy, normalized time).

    Both are relative to the calibration point of this series (same
    benchmark, same thread count).
    """
    raw: dict[tuple[float, float], tuple[float, float]] = {}
    for cf, ucf in sweep_operating_points():
        node = cluster.fresh_node(node_id)
        node.set_frequencies(cf, ucf)
        run = ExecutionSimulator(node, seed=seed).run(
            app, threads=threads, run_key=("sweep", threads, cf, ucf)
        )
        raw[(cf, ucf)] = (run.node_energy_j, run.time_s)
    cal_e, cal_t = raw[
        (config.CALIBRATION_CORE_FREQ_GHZ, config.CALIBRATION_UNCORE_FREQ_GHZ)
    ]
    return {p: (e / cal_e, t / cal_t) for p, (e, t) in raw.items()}


def build_dataset(
    benchmarks: tuple[str, ...] | list[str] | None = None,
    *,
    cluster: Cluster | None = None,
    node_id: int = 0,
    counters: tuple[str, ...] = FEATURE_COUNTERS,
    thread_counts: tuple[int, ...] | None = None,
    seed: int = config.DEFAULT_SEED,
) -> EnergyDataset:
    """Assemble the full training dataset for the given benchmarks.

    ``thread_counts`` defaults to the paper's 12..24 step-4 sweep for
    thread-tunable codes; MPI-only codes contribute one series at their
    fixed configuration.
    """
    if benchmarks is None:
        benchmarks = registry.benchmark_names()
    if thread_counts is None:
        thread_counts = config.OPENMP_THREAD_CANDIDATES
    cluster = cluster or Cluster(4, seed=seed)
    canonical = [preset(c).name for c in counters]
    rows, targets, times, groups = [], [], [], []
    counter_rates: dict[tuple[str, int], np.ndarray] = {}
    for name in benchmarks:
        app = registry.build(name)
        series = (
            thread_counts
            if app.model.supports_thread_tuning
            else (app.default_threads,)
        )
        for threads in series:
            rates = measure_counter_rates(
                app,
                cluster,
                node_id=node_id,
                threads=threads,
                counters=tuple(canonical),
                seed=seed,
            )
            rate_vec = np.array([rates[c] for c in canonical])
            counter_rates[(name, threads)] = rate_vec
            for (cf, ucf), (e_norm, t_norm) in measure_normalized_energy(
                app, cluster, node_id=node_id, threads=threads, seed=seed
            ).items():
                rows.append(np.concatenate([rate_vec, [cf, ucf]]))
                targets.append(e_norm)
                times.append(t_norm)
                groups.append(name)
    feature_names = tuple(preset(c).short_name for c in canonical) + ("CF", "UCF")
    return EnergyDataset(
        features=np.asarray(rows, dtype=float),
        targets=np.asarray(targets, dtype=float),
        times=np.asarray(times, dtype=float),
        groups=np.asarray(groups, dtype=object),
        feature_names=feature_names,
        counter_rates=counter_rates,
    )
