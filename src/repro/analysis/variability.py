"""Node power variability study (Figures 2 and 3, Section IV-B).

Runs one benchmark on several compute nodes across a frequency sweep and
reports raw and normalized node energies.  The paper's observation:
absolute energies spread node-to-node (manufacturing variability), but
normalising each node's series by its own energy at the calibration
point collapses the spread — which is why the model predicts
*normalized* energy.

The study is a natural fleet: the same application at many
(node x operating point) coordinates.  The default engine batches every
cell of the sweep — all nodes, all frequencies, plus each node's
calibration run — into one pass through the fleet replay kernel
(:mod:`repro.execution.fleet_replay`); ``engine="loop"`` runs the
original per-cell simulator loop, bit-identical by construction (the
equality is pinned by ``tests/analysis/test_variability.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import config
from repro.execution.simulator import ExecutionSimulator, OperatingPoint
from repro.hardware.cluster import Cluster
from repro.workloads import registry

#: Execution engines for the sweep: the batched fleet kernel or the
#: per-cell reference loop.
ENGINES: tuple[str, ...] = ("fleet", "loop")


@dataclass
class VariabilityStudy:
    """Energy series per node across one frequency axis."""

    benchmark: str
    axis: str                      #: "core" or "uncore"
    frequencies: tuple[float, ...]
    raw_energy_j: dict[int, np.ndarray]        #: node id -> series
    normalized_energy: dict[int, np.ndarray]   #: node id -> series

    def _spread(self, series: dict[int, np.ndarray]) -> float:
        """Mean across the axis of the relative node-to-node spread."""
        matrix = np.vstack([series[n] for n in sorted(series)])
        return float(np.mean(matrix.std(axis=0) / matrix.mean(axis=0)))

    @property
    def raw_spread(self) -> float:
        return self._spread(self.raw_energy_j)

    @property
    def normalized_spread(self) -> float:
        return self._spread(self.normalized_energy)

    @property
    def spread_reduction(self) -> float:
        """Factor by which normalisation shrinks node-to-node spread."""
        return self.raw_spread / max(self.normalized_spread, 1e-12)


def variability_study(
    benchmark: str = "Lulesh",
    *,
    axis: str = "core",
    nodes: tuple[int, ...] = (0, 1, 2, 3),
    threads: int = config.DEFAULT_OPENMP_THREADS,
    cluster: Cluster | None = None,
    seed: int = config.DEFAULT_SEED,
    engine: str = "fleet",
) -> VariabilityStudy:
    """Reproduce the Figure 2 (axis="core") / Figure 3 (axis="uncore") data.

    Scenario 1 of Section IV-B varies CF with UCF fixed at 1.5 GHz;
    scenario 2 varies UCF with CF fixed at 2.0 GHz.
    """
    if axis == "core":
        frequencies = config.CORE_FREQUENCIES_GHZ
        points = [(cf, config.CALIBRATION_UNCORE_FREQ_GHZ) for cf in frequencies]
    elif axis == "uncore":
        frequencies = config.UNCORE_FREQUENCIES_GHZ
        points = [(config.CALIBRATION_CORE_FREQ_GHZ, ucf) for ucf in frequencies]
    else:
        raise ValueError(f"axis must be 'core' or 'uncore', got {axis!r}")
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
    cluster = cluster or Cluster(max(nodes) + 1, seed=seed)
    def app_builder():
        return registry.build(benchmark)

    cal_point = (
        config.CALIBRATION_CORE_FREQ_GHZ,
        config.CALIBRATION_UNCORE_FREQ_GHZ,
    )
    if engine == "fleet":
        energies = _fleet_energies(
            app_builder(), points, cal_point, nodes, threads, cluster, seed,
            axis,
        )
    else:
        energies = _loop_energies(
            app_builder, points, cal_point, nodes, threads, cluster, seed,
            axis,
        )
    raw: dict[int, np.ndarray] = {}
    normalized: dict[int, np.ndarray] = {}
    for node_id in nodes:
        series, cal_energy = energies[node_id]
        raw[node_id] = np.asarray(series)
        normalized[node_id] = np.asarray(series) / cal_energy
    return VariabilityStudy(
        benchmark=benchmark,
        axis=axis,
        frequencies=frequencies,
        raw_energy_j=raw,
        normalized_energy=normalized,
    )


def _loop_energies(app_builder, points, cal_point, nodes, threads, cluster,
                   seed, axis):
    """The per-cell reference: one simulator pass per (node, point)."""
    energies = {}
    for node_id in nodes:
        series = []
        for cf, ucf in points:
            node = cluster.fresh_node(node_id)
            node.set_frequencies(cf, ucf)
            run = ExecutionSimulator(node, seed=seed).run(
                app_builder(), threads=threads,
                run_key=("variability", axis, cf, ucf),
            )
            series.append(run.node_energy_j)
        # Calibration energy for this node (measured in the same sweep when
        # the axis passes through it, otherwise measured separately).
        if cal_point in points:
            cal_energy = series[points.index(cal_point)]
        else:
            node = cluster.fresh_node(node_id)
            node.set_frequencies(*cal_point)
            cal_energy = ExecutionSimulator(node, seed=seed).run(
                app_builder(), threads=threads, run_key=("variability-cal",)
            ).node_energy_j
        energies[node_id] = (series, cal_energy)
    return energies


def _fleet_energies(app, points, cal_point, nodes, threads, cluster, seed,
                    axis):
    """Every (node, point) cell — and each node's calibration run when
    the axis misses the calibration point — as members of one fleet."""
    from repro.execution.fleet_replay import FleetMember, fleet_run

    needs_cal = cal_point not in points

    def member(node_id, cf, ucf, run_key):
        return FleetMember(
            app=app,
            run_key=run_key,
            node_id=node_id,
            seed=seed,
            node_seed=cluster.seed,
            topology=cluster.topology,
            point=OperatingPoint(cf, ucf, threads),
            threads=threads,
        )

    members = []
    for node_id in nodes:
        for cf, ucf in points:
            members.append(
                member(node_id, cf, ucf, ("variability", axis, cf, ucf))
            )
        if needs_cal:
            members.append(member(node_id, *cal_point, ("variability-cal",)))
    fleet = fleet_run(members)
    stride = len(points) + (1 if needs_cal else 0)
    energies = {}
    for i, node_id in enumerate(nodes):
        rows = fleet.results[i * stride:(i + 1) * stride]
        series = [r.node_energy_j for r in rows[:len(points)]]
        cal_energy = (
            rows[-1].node_energy_j
            if needs_cal
            else series[points.index(cal_point)]
        )
        energies[node_id] = (series, cal_energy)
    return energies
