"""Normalized-energy heatmaps over the CF x UCF grid (Figures 6 and 7).

The figures show, for one benchmark at its optimal thread count, the
measured normalized node energy of every frequency combination, with the
true optimum, the plugin-selected configuration and the set of
configurations within 2% of the optimum highlighted.

Measuring the 14 x 18 grid is the textbook workload of the simulator's
**sweep-replay engine** (:mod:`repro.execution.sweep_replay`): the
default ``engine="sweep"`` replays all 252 configurations in one pass,
bit-identical to (and several times faster than) the historical
``engine="loop"`` that builds a fresh node and runs one configuration at
a time.  Passing a :class:`~repro.campaign.engine.CampaignEngine` routes
the sweep through ``grid``-mode campaign jobs instead, making grid rows
cacheable, parallelisable units in the result store.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import config
from repro.errors import CampaignError
from repro.execution.simulator import ExecutionSimulator, OperatingPoint
from repro.execution.sweep_replay import sweep_run
from repro.hardware.cluster import Cluster
from repro.util.validation import frequency_index
from repro.workloads import registry

#: The paper highlights configurations within 2% of the minimum in pink.
PLATEAU_THRESHOLD = 0.02

#: Grid-measurement engines: the one-pass sweep replay and the
#: historical one-configuration-at-a-time reference loop.
ENGINES = ("sweep", "loop")


@dataclass
class EnergyHeatmap:
    """Measured normalized energies on the full frequency grid."""

    benchmark: str
    threads: int
    core_frequencies: tuple[float, ...]
    uncore_frequencies: tuple[float, ...]
    normalized: np.ndarray  #: shape (len(cfs), len(ucfs))
    selected: tuple[float, float] | None = None  #: plugin's pick (yellow)

    @property
    def best(self) -> tuple[float, float]:
        """True optimum (red in the figures)."""
        i, j = np.unravel_index(int(np.argmin(self.normalized)), self.normalized.shape)
        return (self.core_frequencies[i], self.uncore_frequencies[j])

    @property
    def best_value(self) -> float:
        return float(self.normalized.min())

    def value_at(self, cf: float, ucf: float) -> float:
        i = frequency_index(self.core_frequencies, cf, axis="core-frequency")
        j = frequency_index(self.uncore_frequencies, ucf, axis="uncore-frequency")
        return float(self.normalized[i, j])

    def plateau(self, threshold: float = PLATEAU_THRESHOLD) -> list[tuple[float, float]]:
        """Configurations within ``threshold`` of the optimum (pink)."""
        limit = self.best_value * (1.0 + threshold)
        # np.nonzero scans in row-major order, preserving the
        # (CF-major, UCF-minor) order of the historical nested loop.
        rows, cols = np.nonzero(self.normalized <= limit)
        return [
            (self.core_frequencies[i], self.uncore_frequencies[j])
            for i, j in zip(rows.tolist(), cols.tolist())
        ]

    def selected_within_plateau(self, threshold: float = PLATEAU_THRESHOLD) -> bool:
        """Whether the plugin's pick lands in the near-optimal plateau."""
        if self.selected is None:
            return False
        return self.selected in set(self.plateau(threshold))


def _measure_loop(
    benchmark: str, threads: int, cluster: Cluster, node_id: int, seed: int
) -> np.ndarray:
    """Reference grid measurement: one fresh node and run per cell."""
    cfs = config.CORE_FREQUENCIES_GHZ
    ucfs = config.UNCORE_FREQUENCIES_GHZ
    energies = np.empty((len(cfs), len(ucfs)))
    for i, cf in enumerate(cfs):
        for j, ucf in enumerate(ucfs):
            node = cluster.fresh_node(node_id)
            node.set_frequencies(cf, ucf)
            run = ExecutionSimulator(node, seed=seed).run(
                registry.build(benchmark),
                threads=threads,
                run_key=("heatmap", cf, ucf),
            )
            energies[i, j] = run.node_energy_j
    return energies


def _measure_sweep(
    benchmark: str, threads: int, cluster: Cluster, node_id: int, seed: int
) -> np.ndarray:
    """One-pass grid measurement through the sweep-replay engine."""
    cfs = config.CORE_FREQUENCIES_GHZ
    ucfs = config.UNCORE_FREQUENCIES_GHZ
    points = [OperatingPoint(cf, ucf, threads) for cf in cfs for ucf in ucfs]
    sweep = sweep_run(
        registry.build(benchmark),
        points,
        run_keys=[
            ("heatmap", p.core_freq_ghz, p.uncore_freq_ghz) for p in points
        ],
        node_id=node_id,
        seed=seed,
        node_seed=cluster.seed,
        topology=cluster.topology,
    )
    return np.array([r.node_energy_j for r in sweep.results]).reshape(
        len(cfs), len(ucfs)
    )


def _measure_campaign(
    benchmark: str,
    threads: int,
    cluster: Cluster,
    node_id: int,
    seed: int,
    campaign,
) -> np.ndarray:
    """Grid measurement as cacheable per-row campaign jobs."""
    from repro.campaign.engine import run_app_jobs
    from repro.campaign.plan import grid_jobs

    if campaign.topology != cluster.topology:
        raise CampaignError(
            f"campaign engine topology {campaign.topology!r} does not "
            f"match the cluster's {cluster.topology!r}"
        )
    cfs = config.CORE_FREQUENCIES_GHZ
    ucfs = config.UNCORE_FREQUENCIES_GHZ
    jobs = grid_jobs(
        benchmark,
        label="heatmap",
        points=[OperatingPoint(cf, ucf, threads) for cf in cfs for ucf in ucfs],
        node_id=node_id,
        seed=seed,
        node_seed=cluster.seed,
    )
    results = run_app_jobs(
        jobs, registry.build(benchmark), cluster=cluster, engine=campaign
    )
    return np.array([results[job]["node_energy_j"] for job in jobs]).reshape(
        len(cfs), len(ucfs)
    )


def energy_heatmap(
    benchmark: str,
    *,
    threads: int,
    cluster: Cluster | None = None,
    node_id: int = 0,
    selected: tuple[float, float] | None = None,
    seed: int = config.DEFAULT_SEED,
    engine: str = "sweep",
    campaign=None,
) -> EnergyHeatmap:
    """Measure the full grid for one benchmark at a fixed thread count.

    ``engine`` selects the grid measurement path (``"sweep"`` one-pass
    replay, ``"loop"`` per-cell reference); both are bit-identical.  A
    ``campaign`` engine (implies ``"sweep"`` physics) executes the grid
    as per-row jobs with store caching and worker parallelism.
    """
    if engine not in ENGINES:
        raise CampaignError(f"unknown heatmap engine: {engine!r}; known: {ENGINES}")
    if campaign is not None and engine != "sweep":
        raise CampaignError(
            "campaign-backed heatmaps measure through the sweep engine; "
            f"drop campaign= or use engine='sweep', not {engine!r}"
        )
    cluster = cluster or Cluster(2, seed=seed)
    cluster.check_node_id(node_id)
    cfs = config.CORE_FREQUENCIES_GHZ
    ucfs = config.UNCORE_FREQUENCIES_GHZ
    if campaign is not None:
        energies = _measure_campaign(
            benchmark, threads, cluster, node_id, seed, campaign
        )
    elif engine == "sweep":
        energies = _measure_sweep(benchmark, threads, cluster, node_id, seed)
    else:
        energies = _measure_loop(benchmark, threads, cluster, node_id, seed)
    cal = energies[
        frequency_index(
            cfs, config.CALIBRATION_CORE_FREQ_GHZ, axis="core-frequency"
        ),
        frequency_index(
            ucfs, config.CALIBRATION_UNCORE_FREQ_GHZ, axis="uncore-frequency"
        ),
    ]
    return EnergyHeatmap(
        benchmark=benchmark,
        threads=threads,
        core_frequencies=cfs,
        uncore_frequencies=ucfs,
        normalized=energies / cal,
        selected=selected,
    )
