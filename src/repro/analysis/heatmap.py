"""Normalized-energy heatmaps over the CF x UCF grid (Figures 6 and 7).

The figures show, for one benchmark at its optimal thread count, the
measured normalized node energy of every frequency combination, with the
true optimum, the plugin-selected configuration and the set of
configurations within 2% of the optimum highlighted.

Measuring the 14 x 18 grid is the textbook workload of the simulator's
**sweep-replay engine** (:mod:`repro.execution.sweep_replay`): the
default ``engine="sweep"`` replays all 252 configurations in one pass,
bit-identical to (and several times faster than) the historical
``engine="loop"`` that builds a fresh node and runs one configuration at
a time.  Passing a :class:`~repro.campaign.engine.CampaignEngine` routes
the sweep through ``grid``-mode campaign jobs instead, making grid rows
cacheable, parallelisable units in the result store.

The measurement itself lives in :func:`repro.api.sweep_grid`; this
module adds the figures' normalization and plateau analysis on top.
Execution choices arrive as a :class:`repro.api.ExecutionOptions`
(``options=``); the historical ``engine=`` / ``campaign=`` keywords
remain as deprecated shims.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro import api, config
from repro.errors import CampaignError
from repro.hardware.cluster import Cluster
from repro.util.validation import frequency_index

#: The paper highlights configurations within 2% of the minimum in pink.
PLATEAU_THRESHOLD = 0.02

#: Grid-measurement engines: the one-pass sweep replay and the
#: historical one-configuration-at-a-time reference loop.
ENGINES = ("sweep", "loop")


@dataclass
class EnergyHeatmap:
    """Measured normalized energies on the full frequency grid."""

    benchmark: str
    threads: int
    core_frequencies: tuple[float, ...]
    uncore_frequencies: tuple[float, ...]
    normalized: np.ndarray  #: shape (len(cfs), len(ucfs))
    selected: tuple[float, float] | None = None  #: plugin's pick (yellow)

    @property
    def best(self) -> tuple[float, float]:
        """True optimum (red in the figures)."""
        i, j = np.unravel_index(int(np.argmin(self.normalized)), self.normalized.shape)
        return (self.core_frequencies[i], self.uncore_frequencies[j])

    @property
    def best_value(self) -> float:
        return float(self.normalized.min())

    def value_at(self, cf: float, ucf: float) -> float:
        i = frequency_index(self.core_frequencies, cf, axis="core-frequency")
        j = frequency_index(self.uncore_frequencies, ucf, axis="uncore-frequency")
        return float(self.normalized[i, j])

    def plateau(self, threshold: float = PLATEAU_THRESHOLD) -> list[tuple[float, float]]:
        """Configurations within ``threshold`` of the optimum (pink)."""
        limit = self.best_value * (1.0 + threshold)
        # np.nonzero scans in row-major order, preserving the
        # (CF-major, UCF-minor) order of the historical nested loop.
        rows, cols = np.nonzero(self.normalized <= limit)
        return [
            (self.core_frequencies[i], self.uncore_frequencies[j])
            for i, j in zip(rows.tolist(), cols.tolist())
        ]

    def selected_within_plateau(self, threshold: float = PLATEAU_THRESHOLD) -> bool:
        """Whether the plugin's pick lands in the near-optimal plateau."""
        if self.selected is None:
            return False
        return self.selected in set(self.plateau(threshold))


def energy_heatmap(
    benchmark: str,
    *,
    threads: int,
    cluster: Cluster | None = None,
    node_id: int = 0,
    selected: tuple[float, float] | None = None,
    seed: int = config.DEFAULT_SEED,
    engine: str | None = None,
    campaign=None,
    options: api.ExecutionOptions | None = None,
) -> EnergyHeatmap:
    """Measure the full grid for one benchmark at a fixed thread count.

    ``options`` selects the grid measurement path (``engine="sweep"``
    one-pass replay — the default — or ``"loop"``, the per-cell
    reference; both bit-identical) and may attach a campaign engine
    (implies ``"sweep"`` physics) to execute the grid as per-row jobs
    with store caching and worker parallelism.  The ``engine=`` /
    ``campaign=`` keywords are deprecated spellings of the same
    choices.
    """
    if engine is not None and engine not in ENGINES:
        raise CampaignError(
            f"unknown heatmap engine: {engine!r}; known: {ENGINES}"
        )
    opts = api.resolve_options(
        options,
        site="repro.analysis.heatmap.energy_heatmap",
        engine=engine,
        campaign=campaign,
    )
    if cluster is not None:
        opts = replace(opts, cluster=cluster)
    grid = api.sweep_grid(
        benchmark, threads=threads, node_id=node_id, seed=seed, options=opts
    )
    cal = grid.node_energy_j[
        frequency_index(
            grid.core_frequencies,
            config.CALIBRATION_CORE_FREQ_GHZ,
            axis="core-frequency",
        ),
        frequency_index(
            grid.uncore_frequencies,
            config.CALIBRATION_UNCORE_FREQ_GHZ,
            axis="uncore-frequency",
        ),
    ]
    return EnergyHeatmap(
        benchmark=benchmark,
        threads=threads,
        core_frequencies=grid.core_frequencies,
        uncore_frequencies=grid.uncore_frequencies,
        normalized=grid.node_energy_j / cal,
        selected=selected,
    )
