"""Normalized-energy heatmaps over the CF x UCF grid (Figures 6 and 7).

The figures show, for one benchmark at its optimal thread count, the
measured normalized node energy of every frequency combination, with the
true optimum, the plugin-selected configuration and the set of
configurations within 2% of the optimum highlighted.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import config
from repro.execution.simulator import ExecutionSimulator
from repro.hardware.cluster import Cluster
from repro.workloads import registry

#: The paper highlights configurations within 2% of the minimum in pink.
PLATEAU_THRESHOLD = 0.02


@dataclass
class EnergyHeatmap:
    """Measured normalized energies on the full frequency grid."""

    benchmark: str
    threads: int
    core_frequencies: tuple[float, ...]
    uncore_frequencies: tuple[float, ...]
    normalized: np.ndarray  #: shape (len(cfs), len(ucfs))
    selected: tuple[float, float] | None = None  #: plugin's pick (yellow)

    @property
    def best(self) -> tuple[float, float]:
        """True optimum (red in the figures)."""
        i, j = np.unravel_index(int(np.argmin(self.normalized)), self.normalized.shape)
        return (self.core_frequencies[i], self.uncore_frequencies[j])

    @property
    def best_value(self) -> float:
        return float(self.normalized.min())

    def value_at(self, cf: float, ucf: float) -> float:
        i = self.core_frequencies.index(cf)
        j = self.uncore_frequencies.index(ucf)
        return float(self.normalized[i, j])

    def plateau(self, threshold: float = PLATEAU_THRESHOLD) -> list[tuple[float, float]]:
        """Configurations within ``threshold`` of the optimum (pink)."""
        limit = self.best_value * (1.0 + threshold)
        out = []
        for i, cf in enumerate(self.core_frequencies):
            for j, ucf in enumerate(self.uncore_frequencies):
                if self.normalized[i, j] <= limit:
                    out.append((cf, ucf))
        return out

    def selected_within_plateau(self, threshold: float = PLATEAU_THRESHOLD) -> bool:
        """Whether the plugin's pick lands in the near-optimal plateau."""
        if self.selected is None:
            return False
        return self.selected in set(self.plateau(threshold))


def energy_heatmap(
    benchmark: str,
    *,
    threads: int,
    cluster: Cluster | None = None,
    node_id: int = 0,
    selected: tuple[float, float] | None = None,
    seed: int = config.DEFAULT_SEED,
) -> EnergyHeatmap:
    """Measure the full grid for one benchmark at a fixed thread count."""
    cluster = cluster or Cluster(2, seed=seed)
    cfs = config.CORE_FREQUENCIES_GHZ
    ucfs = config.UNCORE_FREQUENCIES_GHZ
    energies = np.empty((len(cfs), len(ucfs)))
    for i, cf in enumerate(cfs):
        for j, ucf in enumerate(ucfs):
            node = cluster.fresh_node(node_id)
            node.set_frequencies(cf, ucf)
            run = ExecutionSimulator(node, seed=seed).run(
                registry.build(benchmark),
                threads=threads,
                run_key=("heatmap", cf, ucf),
            )
            energies[i, j] = run.node_energy_j
    cal = energies[
        cfs.index(config.CALIBRATION_CORE_FREQ_GHZ),
        ucfs.index(config.CALIBRATION_UNCORE_FREQ_GHZ),
    ]
    return EnergyHeatmap(
        benchmark=benchmark,
        threads=threads,
        core_frequencies=cfs,
        uncore_frequencies=ucfs,
        normalized=energies / cal,
        selected=selected,
    )
