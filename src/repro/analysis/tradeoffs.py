"""Energy/performance trade-off analysis (Section V-D discussion).

Sweeps configurations and reports (time, energy) pairs so the
trade-off frontier can be examined: static tuning may buy energy at no
time cost for compute-bound codes, while aggressive core-frequency
reduction trades time for energy on memory-bound codes.

The configuration sweep is a static grid, so it runs through the
simulator's sweep-replay engine by default
(:mod:`repro.execution.sweep_replay`, ``engine="sweep"``); the
historical per-configuration loop remains as the bit-identical
``engine="loop"`` reference.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro import api, config
from repro.errors import CampaignError
from repro.execution.simulator import ExecutionSimulator, OperatingPoint
from repro.execution.sweep_replay import sweep_run
from repro.hardware.cluster import Cluster
from repro.workloads import registry


@dataclass(frozen=True)
class TradeoffPoint:
    """One configuration's normalized (time, energy) outcome."""

    configuration: OperatingPoint
    relative_time: float    #: vs the platform default
    relative_energy: float  #: vs the platform default

    @property
    def pareto_key(self) -> tuple[float, float]:
        return (self.relative_time, self.relative_energy)


def energy_time_tradeoff(
    benchmark: str,
    configurations: list[OperatingPoint],
    *,
    cluster: Cluster | None = None,
    node_id: int = 0,
    seed: int = config.DEFAULT_SEED,
    engine: str | None = None,
    options: api.ExecutionOptions | None = None,
) -> list[TradeoffPoint]:
    """Evaluate configurations relative to the platform default.

    ``options.engine`` selects the measurement path: ``"sweep"`` (the
    default) replays the whole configuration set in one pass;
    ``"loop"`` runs the per-configuration reference.  Both return
    bit-identical points.  The bare ``engine=`` keyword is the
    deprecated spelling.
    """
    if engine is not None and engine not in ("sweep", "loop"):
        raise CampaignError(
            f"unknown tradeoff engine: {engine!r}; known: ('sweep', 'loop')"
        )
    opts = api.resolve_options(
        options,
        site="repro.analysis.tradeoffs.energy_time_tradeoff",
        engine=engine,
    )
    if cluster is not None:
        opts = replace(opts, cluster=cluster)
    if opts.campaign is not None:
        raise CampaignError(
            "tradeoff sweeps run over arbitrary configuration lists, not "
            "grid rows; they are not campaign-backed — drop campaign"
        )
    engine = opts.grid_engine()
    cluster = opts.resolve_cluster(seed)
    cluster.check_node_id(node_id)
    default_point = OperatingPoint()
    points = list(configurations)
    if default_point not in points:
        points.insert(0, default_point)
    outcomes: dict[OperatingPoint, tuple[float, float]] = {}
    if engine == "sweep":
        sweep = sweep_run(
            registry.build(benchmark),
            points,
            run_keys=[("tradeoff", str(p)) for p in points],
            node_id=node_id,
            seed=seed,
            node_seed=cluster.seed,
            topology=cluster.topology,
        )
        for point, run in zip(points, sweep.results):
            outcomes[point] = (run.time_s, run.node_energy_j)
    elif engine == "loop":
        for point in points:
            node = cluster.fresh_node(node_id)
            node.set_frequencies(point.core_freq_ghz, point.uncore_freq_ghz)
            run = ExecutionSimulator(node, seed=seed).run(
                registry.build(benchmark),
                threads=point.threads,
                run_key=("tradeoff", str(point)),
            )
            outcomes[point] = (run.time_s, run.node_energy_j)
    else:
        raise CampaignError(
            f"unknown tradeoff engine: {engine!r}; known: ('sweep', 'loop')"
        )
    t0, e0 = outcomes[default_point]
    return [
        TradeoffPoint(
            configuration=point,
            relative_time=t / t0,
            relative_energy=e / e0,
        )
        for point, (t, e) in outcomes.items()
    ]


def pareto_front(points: list[TradeoffPoint]) -> list[TradeoffPoint]:
    """Non-dominated subset (minimal time and energy)."""
    front = []
    for p in points:
        dominated = any(
            q.relative_time <= p.relative_time
            and q.relative_energy <= p.relative_energy
            and q.pareto_key != p.pareto_key
            for q in points
        )
        if not dominated:
            front.append(p)
    return sorted(front, key=lambda p: p.relative_time)
