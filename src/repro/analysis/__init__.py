"""Experiment analyses — one producer per paper figure/table.

Each module computes the data behind one piece of the evaluation:

* :mod:`repro.analysis.variability` — Figures 2 and 3 (node-to-node
  power variability and its removal by normalisation);
* :mod:`repro.analysis.heatmap` — Figures 6 and 7 (normalized energy
  over the CF x UCF grid with best/selected/2%-plateau markers);
* :mod:`repro.analysis.savings` — Table VI (static vs dynamic tuning);
* :mod:`repro.analysis.tuning_time` — the Section V-C comparison;
* :mod:`repro.analysis.tradeoffs` — energy/performance trade-off curves;
* :mod:`repro.analysis.reporting` — plain-text rendering of all of it.
"""

from repro.analysis.variability import VariabilityStudy, variability_study
from repro.analysis.heatmap import EnergyHeatmap, energy_heatmap
from repro.analysis.savings import (
    BenchmarkSavings,
    SavingsCase,
    compare_static_dynamic,
    compare_static_dynamic_many,
)
from repro.analysis.tuning_time import tuning_time_comparison
from repro.analysis.tradeoffs import TradeoffPoint, energy_time_tradeoff

__all__ = [
    "VariabilityStudy",
    "variability_study",
    "EnergyHeatmap",
    "energy_heatmap",
    "BenchmarkSavings",
    "SavingsCase",
    "compare_static_dynamic",
    "compare_static_dynamic_many",
    "tuning_time_comparison",
    "TradeoffPoint",
    "energy_time_tradeoff",
]
