"""Static vs dynamic tuning comparison (Table VI, Sections V-D and V-E).

For one benchmark:

* the **default** run: uninstrumented, platform default 2.5|3.0 GHz,
  24 threads — job energy and time via ``sacct``, CPU energy via
  ``measure-rapl``;
* the **static** run: same, with the best static configuration applied
  before launch;
* the **dynamic** run: instrumented binary under the RRL with the tuning
  model — includes configuration effects, switching latencies and
  Score-P overhead;
* the **config-setting** run: RRL switching but uninstrumented,
  isolating the performance reduction caused purely by the tuned
  configurations (the "perf. reduction config setting" column);

savings are computed relative to the default run and averaged over
``runs`` repetitions (the paper averages over five).

Controlled runs execute through the simulator's controlled-replay fast
path by default (bit-identical to the recursive engine); ``engine``
selects explicitly for benchmarking.  With a
:class:`~repro.campaign.engine.CampaignEngine` attached, the four run
variants become ``savings``-mode campaign jobs instead — parallelisable
across a worker pool and cacheable in the result store, bit-identical
to the in-process loop.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro import api, config
from repro.campaign.plan import savings_jobs
from repro.errors import CampaignError
from repro.execution.simulator import ExecutionSimulator, OperatingPoint
from repro.execution.slurm import SlurmAccounting
from repro.hardware.cluster import Cluster
from repro.readex.rrl import RRL, StaticController
from repro.readex.tuning_model import TuningModel
from repro.scorep.instrumentation import Instrumentation
from repro.workloads import registry

#: Execution-engine choices for the controlled runs.
ENGINES: tuple[str, ...] = ("auto", "recursive", "replay")

#: ``engine`` name -> the simulator's ``fast_path`` argument.
_FAST_PATH: dict[str, bool | None] = {
    "auto": None,
    "recursive": False,
    "replay": True,
}


def validate_engine(engine: str) -> None:
    if engine not in ENGINES:
        raise CampaignError(f"unknown engine: {engine!r}; known: {ENGINES}")


@dataclass(frozen=True)
class RunAverages:
    """Mean job energy / CPU energy / time over repeated runs."""

    job_energy_j: float
    cpu_energy_j: float
    time_s: float


@dataclass(frozen=True)
class BenchmarkSavings:
    """One Table VI row."""

    benchmark: str
    static_config: OperatingPoint
    default: RunAverages
    static: RunAverages
    dynamic: RunAverages
    config_only: RunAverages

    # -- static tuning savings -------------------------------------------
    @property
    def static_job_energy_saving(self) -> float:
        return 1.0 - self.static.job_energy_j / self.default.job_energy_j

    @property
    def static_cpu_energy_saving(self) -> float:
        return 1.0 - self.static.cpu_energy_j / self.default.cpu_energy_j

    @property
    def static_time_saving(self) -> float:
        return 1.0 - self.static.time_s / self.default.time_s

    # -- dynamic tuning savings -------------------------------------------
    @property
    def dynamic_job_energy_saving(self) -> float:
        return 1.0 - self.dynamic.job_energy_j / self.default.job_energy_j

    @property
    def dynamic_cpu_energy_saving(self) -> float:
        return 1.0 - self.dynamic.cpu_energy_j / self.default.cpu_energy_j

    @property
    def dynamic_time_saving(self) -> float:
        """Negative when dynamic tuning slows the application down."""
        return 1.0 - self.dynamic.time_s / self.default.time_s

    @property
    def config_setting_perf_reduction(self) -> float:
        """Time increase caused by the tuned configurations alone."""
        return 1.0 - self.config_only.time_s / self.default.time_s

    @property
    def overhead(self) -> float:
        """Residual DVFS/UFS/Score-P overhead: total slowdown minus the
        configuration-setting part (both negative when costing time)."""
        return self.dynamic_time_saving - self.config_setting_perf_reduction


def _averaged_runs(
    benchmark: str,
    cluster: Cluster,
    node_id: int,
    *,
    controller_factory,
    threads: int,
    instrumented: bool,
    instrumentation: Instrumentation | None,
    runs: int,
    key: str,
    seed: int,
    engine: str = "auto",
) -> RunAverages:
    accounting = SlurmAccounting()
    cpu, job, time = [], [], []
    # One registry build serves every repetition: runs never mutate the
    # application, and no simulated quantity is keyed on object identity.
    app = registry.build(benchmark)
    for r in range(runs):
        node = cluster.fresh_node(node_id)
        node.reset_to_default()
        instr = instrumentation
        if instr is not None:
            instr = Instrumentation(app=app, filtered=set(instr.filtered))
        result = ExecutionSimulator(node, seed=seed).run(
            app,
            threads=threads,
            controller=controller_factory() if controller_factory else None,
            instrumented=instrumented,
            instrumentation=instr,
            run_key=(key, r),
            fast_path=_FAST_PATH[engine],
        )
        record = accounting.submit(result)
        job.append(record.consumed_energy_j)
        time.append(record.elapsed_s)
        cpu.append(result.cpu_energy_j)
    return RunAverages(
        job_energy_j=float(np.mean(job)),
        cpu_energy_j=float(np.mean(cpu)),
        time_s=float(np.mean(time)),
    )


def _averaged_jobs(results, jobs) -> RunAverages:
    """Fold one variant's campaign payloads into run averages.

    ``sacct`` job energy is node energy and elapsed time is run time
    (see :meth:`~repro.execution.job.JobRecord.from_run`), so the
    payload triple reproduces the in-process accounting exactly.
    """
    payloads = [results[job] for job in jobs]
    return RunAverages(
        job_energy_j=float(np.mean([p["node_energy_j"] for p in payloads])),
        cpu_energy_j=float(np.mean([p["cpu_energy_j"] for p in payloads])),
        time_s=float(np.mean([p["time_s"] for p in payloads])),
    )


def compare_static_dynamic(
    benchmark: str,
    static_config: OperatingPoint,
    tuning_model: TuningModel,
    *,
    instrumentation: Instrumentation | None = None,
    cluster: Cluster | None = None,
    node_id: int = 0,
    runs: int = 5,
    seed: int = config.DEFAULT_SEED,
    engine: str | None = None,
    campaign=None,
    options: api.ExecutionOptions | None = None,
) -> BenchmarkSavings:
    """Produce one Table VI row for ``benchmark``.

    ``options.engine`` selects the execution engine of the underlying
    runs (``auto``/``recursive``/``replay`` — bit-identical, so the row
    is engine-independent).  With ``options.campaign``
    (:class:`~repro.campaign.engine.CampaignEngine`), the runs execute
    as ``savings``-mode campaign jobs — cached in the engine's result
    store and parallelisable — again bit-identical to the in-process
    loop; ``engine`` must stay ``"auto"`` in that case because cached
    payloads carry no engine choice.  The bare ``engine=`` /
    ``campaign=`` keywords are the deprecated spellings.
    """
    if engine is not None:
        validate_engine(engine)
    opts = api.resolve_options(
        options,
        site="repro.analysis.savings.compare_static_dynamic",
        engine=engine,
        campaign=campaign,
    )
    if cluster is not None:
        opts = replace(opts, cluster=cluster)
    validate_engine(opts.engine)
    engine = opts.engine
    cluster = opts.resolve_cluster(seed)
    if opts.campaign is not None:
        if engine != "auto":
            raise CampaignError(
                "campaign-backed savings runs are engine-independent; "
                "pass engine='auto'"
            )
        return _compare_via_campaign(
            benchmark, static_config, tuning_model,
            instrumentation=instrumentation, cluster=cluster,
            node_id=node_id, runs=runs, seed=seed, campaign=opts.campaign,
        )
    default = _averaged_runs(
        benchmark, cluster, node_id,
        controller_factory=None,
        threads=config.DEFAULT_OPENMP_THREADS,
        instrumented=False,
        instrumentation=None,
        runs=runs, key="default", seed=seed, engine=engine,
    )
    static = _averaged_runs(
        benchmark, cluster, node_id,
        controller_factory=lambda: StaticController(static_config),
        threads=static_config.threads,
        instrumented=False,
        instrumentation=None,
        runs=runs, key="static", seed=seed, engine=engine,
    )
    dynamic = _averaged_runs(
        benchmark, cluster, node_id,
        controller_factory=lambda: RRL(tuning_model),
        threads=config.DEFAULT_OPENMP_THREADS,
        instrumented=True,
        instrumentation=instrumentation,
        runs=runs, key="dynamic", seed=seed, engine=engine,
    )
    config_only = _averaged_runs(
        benchmark, cluster, node_id,
        controller_factory=lambda: RRL(tuning_model),
        threads=config.DEFAULT_OPENMP_THREADS,
        instrumented=False,
        instrumentation=None,
        runs=runs, key="config-only", seed=seed, engine=engine,
    )
    return BenchmarkSavings(
        benchmark=benchmark,
        static_config=static_config,
        default=default,
        static=static,
        dynamic=dynamic,
        config_only=config_only,
    )


def savings_campaign_jobs(
    benchmark: str,
    static_config: OperatingPoint,
    tuning_model: TuningModel,
    *,
    instrumentation: Instrumentation | None,
    node_id: int,
    runs: int,
    seed: int,
    node_seed: int,
) -> dict[str, tuple]:
    """The four Table VI run variants as campaign job batches."""
    tmm_json = tuning_model.to_json()
    filtered = (
        None
        if instrumentation is None
        else tuple(sorted(instrumentation.filtered))
    )
    common = {"runs": runs, "node_id": node_id, "seed": seed,
              "node_seed": node_seed}
    return {
        "default": savings_jobs(
            benchmark, label="default",
            threads=config.DEFAULT_OPENMP_THREADS, **common,
        ),
        "static": savings_jobs(
            benchmark, label="static", controller="static",
            core_freq_ghz=static_config.core_freq_ghz,
            uncore_freq_ghz=static_config.uncore_freq_ghz,
            threads=static_config.threads, **common,
        ),
        "dynamic": savings_jobs(
            benchmark, label="dynamic", controller="rrl",
            tuning_model=tmm_json, instrumented=True,
            filtered_regions=filtered,
            threads=config.DEFAULT_OPENMP_THREADS, **common,
        ),
        "config-only": savings_jobs(
            benchmark, label="config-only", controller="rrl",
            tuning_model=tmm_json,
            threads=config.DEFAULT_OPENMP_THREADS, **common,
        ),
    }


def _compare_via_campaign(
    benchmark: str,
    static_config: OperatingPoint,
    tuning_model: TuningModel,
    *,
    instrumentation: Instrumentation | None,
    cluster: Cluster,
    node_id: int,
    runs: int,
    seed: int,
    campaign,
) -> BenchmarkSavings:
    from repro.campaign.engine import run_app_jobs

    if campaign.topology != cluster.topology:
        # run_app_jobs lets an explicit engine's topology win, which
        # would silently simulate different physics than the caller's
        # cluster describes — and different rows than the in-process
        # loop the campaign path promises to match bit-for-bit.
        raise CampaignError(
            f"campaign engine topology {campaign.topology!r} does not "
            f"match the cluster's {cluster.topology!r}"
        )
    batches = savings_campaign_jobs(
        benchmark, static_config, tuning_model,
        instrumentation=instrumentation, node_id=node_id,
        runs=runs, seed=seed, node_seed=cluster.seed,
    )
    jobs = tuple(job for batch in batches.values() for job in batch)
    results = run_app_jobs(
        jobs, registry.build(benchmark), cluster=cluster, engine=campaign,
        fleet=True,
    )
    return BenchmarkSavings(
        benchmark=benchmark,
        static_config=static_config,
        default=_averaged_jobs(results, batches["default"]),
        static=_averaged_jobs(results, batches["static"]),
        dynamic=_averaged_jobs(results, batches["dynamic"]),
        config_only=_averaged_jobs(results, batches["config-only"]),
    )


@dataclass(frozen=True)
class SavingsCase:
    """One Table VI row's inputs, as a value — the unit
    :func:`compare_static_dynamic_many` batches over."""

    benchmark: str
    static_config: OperatingPoint
    tuning_model: TuningModel
    instrumentation: Instrumentation | None = None


def compare_static_dynamic_many(
    cases: "list[SavingsCase] | tuple[SavingsCase, ...]",
    *,
    cluster: Cluster | None = None,
    node_id: int = 0,
    runs: int = 5,
    seed: int = config.DEFAULT_SEED,
    options: api.ExecutionOptions | None = None,
) -> list[BenchmarkSavings]:
    """Produce many Table VI rows from one batched campaign run.

    The multi-benchmark generalisation of
    :func:`compare_static_dynamic`: with ``options.campaign``, every
    case's four run variants go into a *single* campaign plan executed
    with the fleet strategy, so all benchmarks' default / static /
    dynamic / config-only runs share fleet-kernel invocations (and the
    engine's result store caches each row under its usual per-job key).
    Each returned row is bit-identical to its solo
    ``compare_static_dynamic`` call.  Without a campaign engine the
    cases simply run one at a time.
    """
    opts = api.resolve_options(
        options,
        site="repro.analysis.savings.compare_static_dynamic_many",
    )
    if cluster is not None:
        opts = replace(opts, cluster=cluster)
    validate_engine(opts.engine)
    if opts.campaign is None:
        return [
            compare_static_dynamic(
                case.benchmark, case.static_config, case.tuning_model,
                instrumentation=case.instrumentation, node_id=node_id,
                runs=runs, seed=seed, options=opts,
            )
            for case in cases
        ]
    if opts.engine != "auto":
        raise CampaignError(
            "campaign-backed savings runs are engine-independent; "
            "pass engine='auto'"
        )
    resolved_cluster = opts.resolve_cluster(seed)
    if opts.campaign.topology != resolved_cluster.topology:
        raise CampaignError(
            f"campaign engine topology {opts.campaign.topology!r} does "
            f"not match the cluster's {resolved_cluster.topology!r}"
        )
    from repro.campaign.plan import CampaignPlan

    case_batches = [
        savings_campaign_jobs(
            case.benchmark, case.static_config, case.tuning_model,
            instrumentation=case.instrumentation, node_id=node_id,
            runs=runs, seed=seed, node_seed=resolved_cluster.seed,
        )
        for case in cases
    ]
    all_jobs = tuple(
        job
        for batches in case_batches
        for batch in batches.values()
        for job in batch
    )
    results = opts.campaign.run(
        CampaignPlan(all_jobs),
        on_failure=opts.on_failure,
        retry_failed=opts.retry_failed,
        fleet=True,
    )
    return [
        BenchmarkSavings(
            benchmark=case.benchmark,
            static_config=case.static_config,
            default=_averaged_jobs(results, batches["default"]),
            static=_averaged_jobs(results, batches["static"]),
            dynamic=_averaged_jobs(results, batches["dynamic"]),
            config_only=_averaged_jobs(results, batches["config-only"]),
        )
        for case, batches in zip(cases, case_batches)
    ]
