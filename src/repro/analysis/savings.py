"""Static vs dynamic tuning comparison (Table VI, Sections V-D and V-E).

For one benchmark:

* the **default** run: uninstrumented, platform default 2.5|3.0 GHz,
  24 threads — job energy and time via ``sacct``, CPU energy via
  ``measure-rapl``;
* the **static** run: same, with the best static configuration applied
  before launch;
* the **dynamic** run: instrumented binary under the RRL with the tuning
  model — includes configuration effects, switching latencies and
  Score-P overhead;
* the **config-setting** run: RRL switching but uninstrumented,
  isolating the performance reduction caused purely by the tuned
  configurations (the "perf. reduction config setting" column);

savings are computed relative to the default run and averaged over
``runs`` repetitions (the paper averages over five).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import config
from repro.execution.simulator import ExecutionSimulator, OperatingPoint
from repro.execution.slurm import SlurmAccounting
from repro.hardware.cluster import Cluster
from repro.readex.rrl import RRL, StaticController
from repro.readex.tuning_model import TuningModel
from repro.scorep.instrumentation import Instrumentation
from repro.workloads import registry


@dataclass(frozen=True)
class RunAverages:
    """Mean job energy / CPU energy / time over repeated runs."""

    job_energy_j: float
    cpu_energy_j: float
    time_s: float


@dataclass(frozen=True)
class BenchmarkSavings:
    """One Table VI row."""

    benchmark: str
    static_config: OperatingPoint
    default: RunAverages
    static: RunAverages
    dynamic: RunAverages
    config_only: RunAverages

    # -- static tuning savings -------------------------------------------
    @property
    def static_job_energy_saving(self) -> float:
        return 1.0 - self.static.job_energy_j / self.default.job_energy_j

    @property
    def static_cpu_energy_saving(self) -> float:
        return 1.0 - self.static.cpu_energy_j / self.default.cpu_energy_j

    @property
    def static_time_saving(self) -> float:
        return 1.0 - self.static.time_s / self.default.time_s

    # -- dynamic tuning savings -------------------------------------------
    @property
    def dynamic_job_energy_saving(self) -> float:
        return 1.0 - self.dynamic.job_energy_j / self.default.job_energy_j

    @property
    def dynamic_cpu_energy_saving(self) -> float:
        return 1.0 - self.dynamic.cpu_energy_j / self.default.cpu_energy_j

    @property
    def dynamic_time_saving(self) -> float:
        """Negative when dynamic tuning slows the application down."""
        return 1.0 - self.dynamic.time_s / self.default.time_s

    @property
    def config_setting_perf_reduction(self) -> float:
        """Time increase caused by the tuned configurations alone."""
        return 1.0 - self.config_only.time_s / self.default.time_s

    @property
    def overhead(self) -> float:
        """Residual DVFS/UFS/Score-P overhead: total slowdown minus the
        configuration-setting part (both negative when costing time)."""
        return self.dynamic_time_saving - self.config_setting_perf_reduction


def _averaged_runs(
    benchmark: str,
    cluster: Cluster,
    node_id: int,
    *,
    controller_factory,
    threads: int,
    instrumented: bool,
    instrumentation: Instrumentation | None,
    runs: int,
    key: str,
    seed: int,
) -> RunAverages:
    accounting = SlurmAccounting()
    cpu, job, time = [], [], []
    for r in range(runs):
        app = registry.build(benchmark)
        node = cluster.fresh_node(node_id)
        node.reset_to_default()
        instr = instrumentation
        if instr is not None:
            instr = Instrumentation(app=app, filtered=set(instr.filtered))
        result = ExecutionSimulator(node, seed=seed).run(
            app,
            threads=threads,
            controller=controller_factory() if controller_factory else None,
            instrumented=instrumented,
            instrumentation=instr,
            run_key=(key, r),
        )
        record = accounting.submit(result)
        job.append(record.consumed_energy_j)
        time.append(record.elapsed_s)
        cpu.append(result.cpu_energy_j)
    return RunAverages(
        job_energy_j=float(np.mean(job)),
        cpu_energy_j=float(np.mean(cpu)),
        time_s=float(np.mean(time)),
    )


def compare_static_dynamic(
    benchmark: str,
    static_config: OperatingPoint,
    tuning_model: TuningModel,
    *,
    instrumentation: Instrumentation | None = None,
    cluster: Cluster | None = None,
    node_id: int = 0,
    runs: int = 5,
    seed: int = config.DEFAULT_SEED,
) -> BenchmarkSavings:
    """Produce one Table VI row for ``benchmark``."""
    cluster = cluster or Cluster(2, seed=seed)
    default = _averaged_runs(
        benchmark, cluster, node_id,
        controller_factory=None,
        threads=config.DEFAULT_OPENMP_THREADS,
        instrumented=False,
        instrumentation=None,
        runs=runs, key="default", seed=seed,
    )
    static = _averaged_runs(
        benchmark, cluster, node_id,
        controller_factory=lambda: StaticController(static_config),
        threads=static_config.threads,
        instrumented=False,
        instrumentation=None,
        runs=runs, key="static", seed=seed,
    )
    dynamic = _averaged_runs(
        benchmark, cluster, node_id,
        controller_factory=lambda: RRL(tuning_model),
        threads=config.DEFAULT_OPENMP_THREADS,
        instrumented=True,
        instrumentation=instrumentation,
        runs=runs, key="dynamic", seed=seed,
    )
    config_only = _averaged_runs(
        benchmark, cluster, node_id,
        controller_factory=lambda: RRL(tuning_model),
        threads=config.DEFAULT_OPENMP_THREADS,
        instrumented=False,
        instrumentation=None,
        runs=runs, key="config-only", seed=seed,
    )
    return BenchmarkSavings(
        benchmark=benchmark,
        static_config=static_config,
        default=default,
        static=static,
        dynamic=dynamic,
        config_only=config_only,
    )
