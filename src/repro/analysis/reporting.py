"""Plain-text rendering of every reproduced table and figure.

The benchmark harness prints these; they mirror the layout of the
paper's tables so paper-vs-measured comparison is direct.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.heatmap import EnergyHeatmap
from repro.analysis.savings import BenchmarkSavings
from repro.analysis.tuning_time import TuningTimeComparison
from repro.analysis.variability import VariabilityStudy
from repro.execution.simulator import OperatingPoint
from repro.modeling.selection import CounterSelection
from repro.util.tables import render_table
from repro.workloads.application import BenchmarkInfo


def render_variability(study: VariabilityStudy) -> str:
    rows = []
    for node_id in sorted(study.raw_energy_j):
        raw = study.raw_energy_j[node_id]
        norm = study.normalized_energy[node_id]
        rows.append(
            [f"node{node_id:04d}", raw.min(), raw.max(), norm.min(), norm.max()]
        )
    rows.append(
        ["spread", study.raw_spread, "", study.normalized_spread, ""]
    )
    return render_table(
        ["run", "raw min (J)", "raw max (J)", "norm min", "norm max"],
        rows,
        title=(
            f"{study.benchmark}: node energy across {study.axis}-frequency "
            f"sweep ({len(study.raw_energy_j)} nodes); normalization shrinks "
            f"node-to-node spread {study.spread_reduction:.1f}x"
        ),
    )


def render_counter_selection(selection: CounterSelection) -> str:
    rows = [["(base)", "n/a"]]
    for name, vif in zip(selection.counters, selection.vifs):
        rows.append([name, f"{vif:.3f}"])
    rows.append(["mean VIF", f"{selection.mean_vif:.3f}"])
    return render_table(
        ["Counter", "VIF"],
        rows[1:],
        title=f"Table I: selected counters (adj. R^2 = {selection.adjusted_r2:.3f})",
    )


def render_loocv(results: dict[str, float], *, regression_mape: float | None = None) -> str:
    rows = [[name, f"{v:.2f}"] for name, v in results.items()]
    mean = float(np.mean(list(results.values())))
    rows.append(["average", f"{mean:.2f}"])
    if regression_mape is not None:
        rows.append(["regression 10-fold CV", f"{regression_mape:.2f}"])
    return render_table(
        ["Benchmark", "MAPE (%)"],
        rows,
        title="Figure 5: LOOCV mean absolute percentage error",
    )


def render_heatmap(heatmap: EnergyHeatmap) -> str:
    lines = [
        f"Figure: {heatmap.benchmark} normalized node energy, "
        f"{heatmap.threads} OpenMP threads",
        "UCF(GHz) ->  " + " ".join(f"{u:5.1f}" for u in heatmap.uncore_frequencies),
    ]
    best = heatmap.best
    plateau = set(heatmap.plateau())
    for i, cf in enumerate(heatmap.core_frequencies):
        cells = []
        for j, ucf in enumerate(heatmap.uncore_frequencies):
            value = heatmap.normalized[i, j]
            mark = " "
            if (cf, ucf) == best:
                mark = "*"  # red in the paper
            elif heatmap.selected == (cf, ucf):
                mark = "+"  # yellow in the paper
            elif (cf, ucf) in plateau:
                mark = "."  # pink in the paper
            cells.append(f"{value:4.2f}{mark}")
        lines.append(f"CF {cf:3.1f}:     " + " ".join(cells))
    lines.append(
        f"* true best {best[0]}|{best[1]} GHz (CF|UCF), "
        f"+ plugin selection {heatmap.selected}, . within 2% of optimum"
    )
    return "\n".join(lines)


def render_roster(roster: list[BenchmarkInfo]) -> str:
    by_suite: dict[str, list[str]] = {}
    for info in roster:
        by_suite.setdefault(info.suite, []).append(info.name)
    rows = [[suite, ", ".join(names)] for suite, names in by_suite.items()]
    return render_table(["Suite", "Benchmarks"], rows, title="Table II: benchmarks")


def render_region_configs(
    benchmark: str, configs: dict[str, OperatingPoint]
) -> str:
    rows = [
        [region, cfg.threads, f"{cfg.core_freq_ghz:.2f}", f"{cfg.uncore_freq_ghz:.2f}"]
        for region, cfg in configs.items()
    ]
    return render_table(
        ["Region", "OpenMP threads", "CF (GHz)", "UCF (GHz)"],
        rows,
        title=f"Optimal configuration per significant region of {benchmark}",
    )


def render_static_configs(results: dict[str, OperatingPoint]) -> str:
    rows = [
        [name, cfg.threads, f"{cfg.core_freq_ghz:.2f}", f"{cfg.uncore_freq_ghz:.2f}"]
        for name, cfg in results.items()
    ]
    return render_table(
        ["Benchmark", "OpenMP threads", "CF (GHz)", "UCF (GHz)"],
        rows,
        title="Table V: optimal static configuration",
    )


def _pct(x: float) -> str:
    return f"{x * 100:+.2f}%"


def render_savings(rows_data: list[BenchmarkSavings]) -> str:
    rows = []
    for s in rows_data:
        rows.append(
            [
                s.benchmark,
                f"{_pct(s.static_job_energy_saving)}/{_pct(s.static_cpu_energy_saving)}"
                f"/{_pct(s.static_time_saving)}",
                f"{_pct(s.dynamic_job_energy_saving)}/{_pct(s.dynamic_cpu_energy_saving)}"
                f"/{_pct(s.dynamic_time_saving)}",
                _pct(s.config_setting_perf_reduction),
                _pct(s.overhead),
            ]
        )
    static_job = np.mean([s.static_job_energy_saving for s in rows_data])
    static_cpu = np.mean([s.static_cpu_energy_saving for s in rows_data])
    dyn_job = np.mean([s.dynamic_job_energy_saving for s in rows_data])
    dyn_cpu = np.mean([s.dynamic_cpu_energy_saving for s in rows_data])
    rows.append(
        [
            "average",
            f"{_pct(static_job)}/{_pct(static_cpu)}",
            f"{_pct(dyn_job)}/{_pct(dyn_cpu)}",
            "",
            "",
        ]
    )
    return render_table(
        [
            "Benchmark",
            "static: job E/CPU E/time",
            "dynamic: job E/CPU E/time",
            "config-setting perf",
            "DVFS/UFS/Score-P overhead",
        ],
        rows,
        title="Table VI: static and dynamic tuning results",
    )


def render_tuning_time(cmp: TuningTimeComparison) -> str:
    e = cmp.estimate
    rows = [
        ["application run time t", f"{cmp.single_run_time_s:.1f} s"],
        ["phase iteration time", f"{cmp.phase_time_s:.1f} s"],
        ["regions n", e.regions],
        ["search space k x l x m", f"{e.thread_values} x {e.core_freq_values} x {e.uncore_freq_values}"],
        ["exhaustive [7]: n*k*l*m runs", e.exhaustive_runs],
        ["exhaustive time", f"{e.exhaustive_time_s / 3600:.1f} h"],
        ["model-based: (k+1+9) experiments", e.model_based_experiments],
        ["model-based time (full runs)", f"{e.model_based_time_s / 60:.1f} min"],
        ["model-based time (phase iterations)", f"{cmp.model_based_phase_time_s / 60:.1f} min"],
        ["speedup over exhaustive", f"{cmp.speedup_over_exhaustive:.0f}x"],
    ]
    return render_table(
        ["Quantity", "Value"],
        rows,
        title=f"Section V-C: tuning time for {cmp.benchmark}",
    )
