"""Tuning-time comparison (Section V-C).

Quantifies the search-space reduction: the exhaustive per-region
approach of Sourouri et al. [7] needs ``n * k * l * m`` application runs,
the model-based plugin needs ``k + 1 + 9`` experiments — and when the
main loop is progressive, those experiments are phase *iterations*, not
whole application runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import config
from repro.execution.simulator import ExecutionSimulator
from repro.hardware.cluster import Cluster
from repro.ptf.exhaustive_plugin import TuningTimeEstimate, estimate_tuning_time
from repro.workloads import registry


@dataclass(frozen=True)
class TuningTimeComparison:
    """Measured + estimated tuning times for one benchmark."""

    benchmark: str
    single_run_time_s: float
    phase_time_s: float
    estimate: TuningTimeEstimate
    #: model-based cost when each experiment is one phase iteration.
    model_based_phase_time_s: float

    @property
    def exhaustive_time_s(self) -> float:
        return self.estimate.exhaustive_time_s

    @property
    def model_based_run_time_s(self) -> float:
        return self.estimate.model_based_time_s

    @property
    def speedup_over_exhaustive(self) -> float:
        return self.estimate.speedup

    @property
    def phase_exploitation_speedup(self) -> float:
        """Extra factor from evaluating per phase iteration."""
        return self.model_based_run_time_s / self.model_based_phase_time_s


def tuning_time_comparison(
    benchmark: str = "Mcb",
    *,
    cluster: Cluster | None = None,
    node_id: int = 0,
    num_regions: int | None = None,
    seed: int = config.DEFAULT_SEED,
) -> TuningTimeComparison:
    """Build the Section V-C comparison from a measured run time."""
    cluster = cluster or Cluster(2, seed=seed)
    app = registry.build(benchmark)
    node = cluster.fresh_node(node_id)
    node.set_frequencies(
        config.CALIBRATION_CORE_FREQ_GHZ, config.CALIBRATION_UNCORE_FREQ_GHZ
    )
    run = ExecutionSimulator(node, seed=seed).run(app, run_key=("tuning-time",))
    phase_time = run.time_s / app.phase_iterations
    if num_regions is None:
        num_regions = len(app.candidate_regions)
    estimate = estimate_tuning_time(app, run.time_s, num_regions=num_regions)
    return TuningTimeComparison(
        benchmark=benchmark,
        single_run_time_s=run.time_s,
        phase_time_s=phase_time,
        estimate=estimate,
        model_based_phase_time_s=estimate.model_based_experiments * phase_time,
    )
