"""The public tuning API — one typed facade over the whole pipeline.

Every consumer that used to reach into :mod:`repro.analysis`,
:mod:`repro.ptf` or :mod:`repro.execution` directly — with their
historically inconsistent ``engine=`` / ``campaign=`` / ``measurement=``
keyword spellings — goes through this module instead:

:class:`ExecutionOptions`
    The one normalized description of *how* to execute: which engine
    variant, whether a :class:`~repro.campaign.engine.CampaignEngine`
    (worker pool + content-addressed result store) backs the runs, and
    how full-grid measurements are addressed in the store.

:class:`TuningRequest` / :func:`tune`
    The paper's end product as a callable: "for (benchmark, threads,
    objective, TMM), which CF x UCF configuration should run?".  The
    grid is measured in one pass through the config-axis sweep engine
    (:mod:`repro.execution.sweep_replay`) and the objective argmin is
    evaluated vectorised; an optional serialised tuning model (TMM)
    adds a dynamic-tuning (RRL) outcome priced through the
    controlled-replay kernels.

:func:`sweep_grid`
    The shared grid-measurement primitive: the full (or thinned)
    CF x UCF grid for one (benchmark, threads) as a rectangular
    :class:`GridMeasurement` — bit-identical per cell to a fresh-node
    per-configuration loop, and the unit the serving layer
    (:mod:`repro.serve`) coalesces concurrent requests onto.

:func:`replay` / :func:`savings`
    One-configuration execution and the Table VI static/dynamic
    comparison, with the same options object.

Old keyword spellings on the rewired call sites
(:func:`repro.analysis.heatmap.energy_heatmap`,
:func:`repro.analysis.tradeoffs.energy_time_tradeoff`,
:func:`repro.analysis.savings.compare_static_dynamic`,
:func:`repro.ptf.static_tuning.exhaustive_static_search`) keep working
through thin shims that warn once per call site and fold the value into
an :class:`ExecutionOptions`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any

import numpy as np

from repro import config
from repro.errors import CampaignError, TuningError
from repro.execution.simulator import OperatingPoint
from repro.ptf.objectives import OBJECTIVES, Objective, get_objective
from repro.util.validation import frequency_index
from repro.workloads import registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.campaign.engine import CampaignEngine
    from repro.hardware.cluster import Cluster

__all__ = [
    "ENGINES",
    "MEASUREMENTS",
    "ExecutionOptions",
    "GridMeasurement",
    "GridSpec",
    "DynamicOutcome",
    "TuningAnswer",
    "TuningRequest",
    "RunTriple",
    "grid_axes",
    "resolve_options",
    "sweep_grid",
    "sweep_grids",
    "tune",
    "replay",
    "savings",
]

#: Every engine spelling the facade accepts.  ``auto`` resolves to the
#: fast path of whatever kernel a call uses (sweep replay for grids,
#: auto-dispatch for single runs); the rest pin a specific engine:
#: ``sweep``/``loop`` for grid measurements, ``recursive``/``replay``
#: for single-run execution.
ENGINES: tuple[str, ...] = ("auto", "sweep", "loop", "recursive", "replay")

#: Store-addressing granularities for exhaustive grid measurements.
MEASUREMENTS: tuple[str, ...] = ("grid", "cell")

#: Definitive-failure policies (mirrors
#: :data:`repro.campaign.resilience.ON_FAILURE_POLICIES`).
ON_FAILURE: tuple[str, ...] = ("raise", "quarantine", "skip")

#: ``engine`` name -> the simulator's ``fast_path`` argument for
#: single-run execution.
_FAST_PATH: dict[str, bool | None] = {
    "auto": None,
    "recursive": False,
    "replay": True,
}


@dataclass(frozen=True)
class ExecutionOptions:
    """How (not what) to execute — the one normalized options object.

    ``engine`` picks the execution kernel (see :data:`ENGINES`);
    ``campaign`` attaches a worker pool + content-addressed result
    store so measurements cache and parallelise; ``measurement`` picks
    the store addressing of exhaustive grids (``"grid"`` rows through
    the sweep engine, ``"cell"`` the historical one-job-per-cell plan);
    ``cluster`` supplies the simulated hardware (one is built from the
    seed when omitted).  All execution paths are bit-identical — these
    options trade speed and caching, never results.
    """

    engine: str = "auto"
    campaign: "CampaignEngine | None" = None
    measurement: str = "grid"
    cluster: "Cluster | None" = None
    #: Campaign-backed runs only: what a definitive job failure does
    #: (PR-7 semantics — ``raise``/``quarantine``/``skip``) and whether
    #: jobs quarantined by an earlier run are re-attempted.
    on_failure: str = "raise"
    retry_failed: bool = False

    def __post_init__(self):
        if self.engine not in ENGINES:
            raise CampaignError(
                f"unknown engine: {self.engine!r}; known: {ENGINES}"
            )
        if self.measurement not in MEASUREMENTS:
            raise CampaignError(
                f"unknown measurement: {self.measurement!r}; "
                f"known: {MEASUREMENTS}"
            )
        if self.on_failure not in ON_FAILURE:
            raise CampaignError(
                f"unknown on_failure policy: {self.on_failure!r}; "
                f"known: {ON_FAILURE}"
            )

    # ------------------------------------------------------------------
    def resolve_cluster(self, seed: int = config.DEFAULT_SEED) -> "Cluster":
        """The cluster to simulate on (an explicit one wins)."""
        from repro.hardware.cluster import Cluster

        if self.cluster is not None:
            return self.cluster
        return Cluster(2, seed=seed)

    def grid_engine(self) -> str:
        """``sweep`` or ``loop`` for full-grid measurements."""
        if self.engine in ("auto", "sweep"):
            return "sweep"
        if self.engine == "loop":
            return "loop"
        raise CampaignError(
            f"engine {self.engine!r} does not measure grids; "
            "use 'auto', 'sweep' or 'loop'"
        )

    def run_fast_path(self) -> bool | None:
        """The simulator ``fast_path`` argument for single runs."""
        if self.engine in _FAST_PATH:
            return _FAST_PATH[self.engine]
        raise CampaignError(
            f"engine {self.engine!r} does not execute single runs; "
            "use 'auto', 'recursive' or 'replay'"
        )


# ---------------------------------------------------------------------------
# Legacy-kwarg normalization (the deprecation shims)
# ---------------------------------------------------------------------------

_WARNED_SITES: set[str] = set()


def _warn_legacy(site: str, kwargs: list[str]) -> None:
    if site in _WARNED_SITES:
        return
    _WARNED_SITES.add(site)
    listed = ", ".join(f"{k}=" for k in kwargs)
    warnings.warn(
        f"{site}: the {listed} keyword(s) are deprecated; pass "
        "options=repro.api.ExecutionOptions(...) instead",
        DeprecationWarning,
        stacklevel=4,
    )


def resolve_options(
    options: ExecutionOptions | None,
    *,
    site: str,
    engine: str | None = None,
    campaign: "CampaignEngine | None" = None,
    measurement: str | None = None,
) -> ExecutionOptions:
    """Fold legacy keyword spellings into one :class:`ExecutionOptions`.

    Rewired call sites pass their historical ``engine=`` / ``campaign=``
    / ``measurement=`` values here (``None`` when the caller did not use
    them).  Any non-``None`` legacy value triggers a once-per-site
    :class:`DeprecationWarning`; mixing legacy keywords with an explicit
    ``options=`` is an error — there would be two sources of truth.
    """
    legacy = {
        "engine": engine,
        "campaign": campaign,
        "measurement": measurement,
    }
    used = [name for name, value in legacy.items() if value is not None]
    if not used:
        return options if options is not None else ExecutionOptions()
    if options is not None:
        raise CampaignError(
            f"{site}: pass either options= or the deprecated "
            f"{'/'.join(used)} keyword(s), not both"
        )
    _warn_legacy(site, used)
    return ExecutionOptions(
        engine=engine if engine is not None else "auto",
        campaign=campaign,
        measurement=measurement if measurement is not None else "grid",
    )


# ---------------------------------------------------------------------------
# Requests and answers
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TuningRequest:
    """One tuning question: which CF x UCF configuration should run?

    ``threads`` of ``None`` resolves to the application default;
    ``objective`` names a registered scalarisation (lower is better);
    ``tmm`` optionally carries a serialised
    :class:`~repro.readex.tuning_model.TuningModel` whose
    dynamic-tuning outcome is priced alongside the static answer;
    ``stride`` thins both frequency axes (the platform-default
    frequencies are always kept, so savings stay well-defined).
    ``node_id`` and ``seed`` pin the simulated hardware instance and
    noise streams — they are part of the question's identity, which is
    what makes answers content-addressable and coalescible.
    """

    benchmark: str
    threads: int | None = None
    objective: str = "energy"
    tmm: str | None = None
    stride: int = 1
    node_id: int = 0
    seed: int = config.DEFAULT_SEED

    def validate(self) -> None:
        if self.benchmark not in registry.benchmark_names():
            raise TuningError(
                f"unknown benchmark {self.benchmark!r}; "
                f"known: {list(registry.benchmark_names())}"
            )
        if self.threads is not None and (
            not isinstance(self.threads, int) or self.threads < 1
        ):
            raise TuningError(
                f"threads must be a positive integer, got {self.threads!r}"
            )
        if self.objective not in OBJECTIVES:
            raise TuningError(
                f"unknown objective {self.objective!r}; "
                f"known: {sorted(OBJECTIVES)}"
            )
        if not isinstance(self.stride, int) or self.stride < 1:
            raise TuningError(
                f"stride must be a positive integer, got {self.stride!r}"
            )

    def resolved(self) -> "TuningRequest":
        """Validated copy with ``threads`` filled from the registry."""
        self.validate()
        if self.threads is not None:
            return self
        return replace(
            self, threads=registry.build(self.benchmark).default_threads
        )

    def grid_key(self) -> tuple:
        """The coalescing key: requests sharing it share one sweep.

        Objectives and TMMs are deliberately absent — they are evaluated
        *from* the measured grid, so any mix of them on the same
        (benchmark, threads, node, seed, stride) costs one sweep.
        """
        return (
            "grid",
            self.benchmark,
            self.threads,
            self.stride,
            self.node_id,
            self.seed,
        )

    def grid_spec(self) -> "GridSpec":
        """The measurement this request needs, as a :class:`GridSpec`."""
        return GridSpec(
            benchmark=self.benchmark,
            threads=self.threads,
            stride=self.stride,
            node_id=self.node_id,
            seed=self.seed,
        )


@dataclass(frozen=True)
class RunTriple:
    """The measured outcome of one run (the campaign payload triple)."""

    node_energy_j: float
    cpu_energy_j: float
    time_s: float


@dataclass(frozen=True)
class DynamicOutcome:
    """One RRL-controlled run under a tuning model (TMM)."""

    node_energy_j: float
    cpu_energy_j: float
    time_s: float
    switching_time_s: float
    instrumentation_time_s: float

    def payload(self) -> dict[str, Any]:
        return {
            "node_energy_j": self.node_energy_j,
            "cpu_energy_j": self.cpu_energy_j,
            "time_s": self.time_s,
            "switching_time_s": self.switching_time_s,
            "instrumentation_time_s": self.instrumentation_time_s,
        }


@dataclass(frozen=True)
class GridMeasurement:
    """A rectangular CF x UCF measurement at one thread count.

    Arrays are shaped ``(len(core_frequencies), len(uncore_frequencies))``
    and every cell is bit-identical to a fresh-node
    :meth:`~repro.execution.simulator.ExecutionSimulator.run` at that
    configuration with the canonical ``("heatmap", cf, ucf)`` noise key
    — independent of how (sweep, loop, campaign rows) or with which
    batch-mates the grid was measured.
    """

    benchmark: str
    threads: int
    node_id: int
    seed: int
    core_frequencies: tuple[float, ...]
    uncore_frequencies: tuple[float, ...]
    node_energy_j: np.ndarray
    cpu_energy_j: np.ndarray
    time_s: np.ndarray

    @property
    def cells(self) -> int:
        return int(self.node_energy_j.size)

    def answer(self, request: TuningRequest) -> "TuningAnswer":
        """Evaluate one request's objective over this grid.

        Vectorised argmin in row-major (CF-major) order — the first
        minimum matches the historical nested per-cell loop.  The
        platform-default cell is the savings baseline.
        """
        objective: Objective = get_objective(request.objective)
        values = objective.batch(
            self.node_energy_j.ravel(), self.time_s.ravel()
        )
        flat = int(np.argmin(values))
        i, j = np.unravel_index(flat, self.node_energy_j.shape)
        di = frequency_index(
            self.core_frequencies,
            config.DEFAULT_CORE_FREQ_GHZ,
            axis="core-frequency",
        )
        dj = frequency_index(
            self.uncore_frequencies,
            config.DEFAULT_UNCORE_FREQ_GHZ,
            axis="uncore-frequency",
        )
        return TuningAnswer(
            benchmark=self.benchmark,
            threads=self.threads,
            objective=request.objective,
            best=OperatingPoint(
                self.core_frequencies[i],
                self.uncore_frequencies[j],
                self.threads,
            ),
            best_energy_j=float(self.node_energy_j[i, j]),
            best_time_s=float(self.time_s[i, j]),
            best_objective=float(values[flat]),
            default_energy_j=float(self.node_energy_j[di, dj]),
            default_time_s=float(self.time_s[di, dj]),
            cells=self.cells,
        )


@dataclass(frozen=True)
class TuningAnswer:
    """What :func:`tune` returns (and what the serving layer ships)."""

    benchmark: str
    threads: int
    objective: str
    best: OperatingPoint
    best_energy_j: float
    best_time_s: float
    best_objective: float
    default_energy_j: float
    default_time_s: float
    cells: int
    dynamic: DynamicOutcome | None = None

    @property
    def energy_saving(self) -> float:
        """Fractional node-energy saving of the best static cell vs the
        platform default."""
        return 1.0 - self.best_energy_j / self.default_energy_j

    def payload(self) -> dict[str, Any]:
        """JSON-able form; floats survive a JSON round-trip bit-exactly
        (``repr`` shortest round-trip), so payload equality is result
        equality."""
        return {
            "benchmark": self.benchmark,
            "threads": self.threads,
            "objective": self.objective,
            "best": [
                self.best.core_freq_ghz,
                self.best.uncore_freq_ghz,
                self.best.threads,
            ],
            "best_energy_j": self.best_energy_j,
            "best_time_s": self.best_time_s,
            "best_objective": self.best_objective,
            "default_energy_j": self.default_energy_j,
            "default_time_s": self.default_time_s,
            "energy_saving": self.energy_saving,
            "cells": self.cells,
            "dynamic": None if self.dynamic is None else self.dynamic.payload(),
        }


# ---------------------------------------------------------------------------
# Grid measurement (the shared primitive)
# ---------------------------------------------------------------------------

def _thin_axis(
    axis: tuple[float, ...], stride: int, keep: float
) -> tuple[float, ...]:
    thinned = set(axis[::stride])
    thinned.add(keep)
    return tuple(sorted(thinned))


def grid_axes(stride: int = 1) -> tuple[tuple[float, ...], tuple[float, ...]]:
    """The (CF, UCF) axes at a given thinning stride, ascending.

    The platform-default frequencies are always present so the savings
    baseline is part of every grid (mirroring
    :func:`repro.campaign.plan.static_operating_points`).
    """
    if stride < 1:
        raise TuningError("stride must be >= 1")
    return (
        _thin_axis(
            config.CORE_FREQUENCIES_GHZ, stride, config.DEFAULT_CORE_FREQ_GHZ
        ),
        _thin_axis(
            config.UNCORE_FREQUENCIES_GHZ,
            stride,
            config.DEFAULT_UNCORE_FREQ_GHZ,
        ),
    )


def sweep_grid(
    benchmark: str,
    *,
    threads: int | None = None,
    stride: int = 1,
    node_id: int = 0,
    seed: int = config.DEFAULT_SEED,
    options: ExecutionOptions | None = None,
) -> GridMeasurement:
    """Measure the CF x UCF grid for one benchmark at one thread count.

    The default path is one pass through the config-axis sweep engine;
    ``options.engine="loop"`` runs the bit-identical per-cell reference
    loop, and ``options.campaign`` executes the grid as cacheable
    per-row campaign jobs instead.  Cells carry the canonical
    ``("heatmap", cf, ucf)`` noise keys, so the measurement equals the
    Figures 6/7 heatmap cells and any solo run at the same coordinates.
    """
    options = options if options is not None else ExecutionOptions()
    engine = options.grid_engine()
    app = registry.build(benchmark)
    if threads is None:
        threads = app.default_threads
    cfs, ucfs = grid_axes(stride)
    cluster = options.resolve_cluster(seed)
    cluster.check_node_id(node_id)
    points = [OperatingPoint(cf, ucf, threads) for cf in cfs for ucf in ucfs]
    shape = (len(cfs), len(ucfs))
    if options.campaign is not None:
        if engine != "sweep":
            raise CampaignError(
                "campaign-backed grids measure through the sweep engine; "
                f"drop campaign= or use engine='sweep', not {engine!r}"
            )
        from repro.campaign.engine import run_app_jobs
        from repro.campaign.plan import grid_jobs

        if options.campaign.topology != cluster.topology:
            raise CampaignError(
                f"campaign engine topology {options.campaign.topology!r} "
                f"does not match the cluster's {cluster.topology!r}"
            )
        jobs = grid_jobs(
            benchmark,
            label="heatmap",
            points=points,
            node_id=node_id,
            seed=seed,
            node_seed=cluster.seed,
        )
        results = run_app_jobs(
            jobs,
            app,
            cluster=cluster,
            engine=options.campaign,
            on_failure=options.on_failure,
            retry_failed=options.retry_failed,
        )
        payloads = [results[job] for job in jobs]
        energies = np.array(
            [e for p in payloads for e in p["node_energy_j"]]
        ).reshape(shape)
        cpu = np.array(
            [e for p in payloads for e in p["cpu_energy_j"]]
        ).reshape(shape)
        times = np.array(
            [t for p in payloads for t in p["time_s"]]
        ).reshape(shape)
    elif engine == "sweep":
        from repro.execution.sweep_replay import sweep_run

        sweep = sweep_run(
            app,
            points,
            run_keys=[
                ("heatmap", p.core_freq_ghz, p.uncore_freq_ghz) for p in points
            ],
            node_id=node_id,
            seed=seed,
            node_seed=cluster.seed,
            topology=cluster.topology,
        )
        energies = np.array([r.node_energy_j for r in sweep.results]).reshape(shape)
        cpu = np.array([r.cpu_energy_j for r in sweep.results]).reshape(shape)
        times = np.array([r.time_s for r in sweep.results]).reshape(shape)
    else:
        from repro.execution.simulator import ExecutionSimulator

        energies = np.empty(shape)
        cpu = np.empty(shape)
        times = np.empty(shape)
        for i, cf in enumerate(cfs):
            for j, ucf in enumerate(ucfs):
                node = cluster.fresh_node(node_id)
                node.set_frequencies(cf, ucf)
                run = ExecutionSimulator(node, seed=seed).run(
                    app, threads=threads, run_key=("heatmap", cf, ucf)
                )
                energies[i, j] = run.node_energy_j
                cpu[i, j] = run.cpu_energy_j
                times[i, j] = run.time_s
    return GridMeasurement(
        benchmark=benchmark,
        threads=threads,
        node_id=node_id,
        seed=seed,
        core_frequencies=cfs,
        uncore_frequencies=ucfs,
        node_energy_j=energies,
        cpu_energy_j=cpu,
        time_s=times,
    )


@dataclass(frozen=True)
class GridSpec:
    """One grid measurement's identity — :func:`sweep_grid`'s arguments
    as a value, so many grids can be requested at once."""

    benchmark: str
    threads: int | None = None
    stride: int = 1
    node_id: int = 0
    seed: int = config.DEFAULT_SEED


def sweep_grids(
    specs: "list[GridSpec] | tuple[GridSpec, ...]",
    *,
    options: ExecutionOptions | None = None,
) -> list[GridMeasurement]:
    """Measure many CF x UCF grids — across benchmarks, thread counts,
    nodes and seeds — in one batched pass.

    This is the multi-grid generalisation of :func:`sweep_grid`: every
    cell of every grid becomes one member of a single fleet-kernel
    invocation (:func:`repro.execution.fleet_replay.fleet_run`), so the
    structural schedules compile once per application, the keyed noise
    for the whole fleet is drawn in one batched pass, and pricing is a
    handful of padded-matrix folds instead of one engine pass per grid.
    Each returned grid is bit-identical to ``sweep_grid`` of its spec —
    batch-mates never change a cell.

    With ``options.campaign``, all grids go into one campaign plan
    executed with the fleet strategy (``fleet=True``) — rows cache
    under their usual per-job store keys.  ``options.engine="loop"``
    falls back to the per-cell reference loop, one grid at a time.
    """
    options = options if options is not None else ExecutionOptions()
    specs = list(specs)
    engine = options.grid_engine()
    if engine == "loop" or len(specs) == 0:
        return [
            sweep_grid(
                s.benchmark,
                threads=s.threads,
                stride=s.stride,
                node_id=s.node_id,
                seed=s.seed,
                options=options,
            )
            for s in specs
        ]

    # Resolve each spec exactly as sweep_grid would.
    resolved = []
    for s in specs:
        app = registry.build(s.benchmark)
        threads = s.threads if s.threads is not None else app.default_threads
        cfs, ucfs = grid_axes(s.stride)
        cluster = options.resolve_cluster(s.seed)
        cluster.check_node_id(s.node_id)
        points = [
            OperatingPoint(cf, ucf, threads) for cf in cfs for ucf in ucfs
        ]
        resolved.append((s, app, threads, cfs, ucfs, cluster, points))

    if options.campaign is not None:
        from repro.campaign.plan import CampaignPlan, grid_jobs

        all_jobs: list = []
        spec_jobs: list[tuple] = []
        for s, app, threads, cfs, ucfs, cluster, points in resolved:
            if options.campaign.topology != cluster.topology:
                raise CampaignError(
                    f"campaign engine topology "
                    f"{options.campaign.topology!r} does not match the "
                    f"cluster's {cluster.topology!r}"
                )
            jobs = grid_jobs(
                s.benchmark,
                label="heatmap",
                points=points,
                node_id=s.node_id,
                seed=s.seed,
                node_seed=cluster.seed,
            )
            spec_jobs.append(jobs)
            all_jobs.extend(jobs)
        results = options.campaign.run(
            CampaignPlan(tuple(all_jobs)),
            on_failure=options.on_failure,
            retry_failed=options.retry_failed,
            fleet=True,
        )
        grids = []
        for (s, app, threads, cfs, ucfs, cluster, points), jobs in zip(
            resolved, spec_jobs
        ):
            payloads = [results[job] for job in jobs]
            shape = (len(cfs), len(ucfs))
            grids.append(
                GridMeasurement(
                    benchmark=s.benchmark,
                    threads=threads,
                    node_id=s.node_id,
                    seed=s.seed,
                    core_frequencies=cfs,
                    uncore_frequencies=ucfs,
                    node_energy_j=np.array(
                        [e for p in payloads for e in p["node_energy_j"]]
                    ).reshape(shape),
                    cpu_energy_j=np.array(
                        [e for p in payloads for e in p["cpu_energy_j"]]
                    ).reshape(shape),
                    time_s=np.array(
                        [t for p in payloads for t in p["time_s"]]
                    ).reshape(shape),
                )
            )
        return grids

    from repro.execution.fleet_replay import FleetMember, fleet_run

    members: list[FleetMember] = []
    spans: list[tuple[int, int]] = []
    for s, app, threads, cfs, ucfs, cluster, points in resolved:
        start = len(members)
        for point in points:
            members.append(
                FleetMember(
                    app=app,
                    run_key=(
                        "heatmap", point.core_freq_ghz, point.uncore_freq_ghz
                    ),
                    node_id=s.node_id,
                    seed=s.seed,
                    node_seed=cluster.seed,
                    topology=cluster.topology,
                    point=point,
                )
            )
        spans.append((start, len(points)))
    fleet = fleet_run(members)
    grids = []
    for (s, app, threads, cfs, ucfs, cluster, points), (start, count) in zip(
        resolved, spans
    ):
        rows = fleet.results[start:start + count]
        shape = (len(cfs), len(ucfs))
        grids.append(
            GridMeasurement(
                benchmark=s.benchmark,
                threads=threads,
                node_id=s.node_id,
                seed=s.seed,
                core_frequencies=cfs,
                uncore_frequencies=ucfs,
                node_energy_j=np.array(
                    [r.node_energy_j for r in rows]
                ).reshape(shape),
                cpu_energy_j=np.array(
                    [r.cpu_energy_j for r in rows]
                ).reshape(shape),
                time_s=np.array([r.time_s for r in rows]).reshape(shape),
            )
        )
    return grids


# ---------------------------------------------------------------------------
# The facade verbs
# ---------------------------------------------------------------------------

def _dynamic_outcome(
    request: TuningRequest, options: ExecutionOptions
) -> DynamicOutcome:
    """Price one RRL-controlled run of the request's TMM (cacheable)."""
    from repro.campaign.engine import run_app_jobs
    from repro.campaign.plan import savings_jobs
    from repro.readex.tuning_model import TuningModel

    tmm = TuningModel.from_json(request.tmm)
    cluster = options.resolve_cluster(request.seed)
    jobs = savings_jobs(
        request.benchmark,
        label="dynamic",
        runs=1,
        threads=config.DEFAULT_OPENMP_THREADS,
        controller="rrl",
        tuning_model=tmm.to_json(),
        instrumented=True,
        node_id=request.node_id,
        seed=request.seed,
        node_seed=cluster.seed,
    )
    results = run_app_jobs(
        jobs,
        registry.build(request.benchmark),
        cluster=cluster,
        engine=options.campaign,
        on_failure=options.on_failure,
        retry_failed=options.retry_failed,
    )
    payload = results[jobs[0]]
    return DynamicOutcome(
        node_energy_j=payload["node_energy_j"],
        cpu_energy_j=payload["cpu_energy_j"],
        time_s=payload["time_s"],
        switching_time_s=payload["switching_time_s"],
        instrumentation_time_s=payload["instrumentation_time_s"],
    )


def tune(
    request: TuningRequest, options: ExecutionOptions | None = None
) -> TuningAnswer:
    """Answer one tuning request from a full grid measurement.

    This is the offline reference the serving layer is bit-identical
    to: the grid comes from :func:`sweep_grid` (cached/coalesced or
    not, the cells agree to the bit) and the objective argmin is a
    deterministic fold over it.
    """
    options = options if options is not None else ExecutionOptions()
    request = request.resolved()
    grid = sweep_grid(
        request.benchmark,
        threads=request.threads,
        stride=request.stride,
        node_id=request.node_id,
        seed=request.seed,
        options=options,
    )
    answer = grid.answer(request)
    if request.tmm is not None:
        answer = replace(answer, dynamic=_dynamic_outcome(request, options))
    return answer


def replay(
    benchmark: str,
    point: OperatingPoint | None = None,
    *,
    node_id: int = 0,
    seed: int = config.DEFAULT_SEED,
    options: ExecutionOptions | None = None,
) -> RunTriple:
    """Execute one configuration and return its measured triple.

    The run carries the canonical ``("static", cf, ucf, threads)``
    noise key, so it is bit-identical to (and cache-compatible with)
    the exhaustive static search's per-cell jobs.
    """
    options = options if options is not None else ExecutionOptions()
    point = point if point is not None else OperatingPoint()
    cluster = options.resolve_cluster(seed)
    cluster.check_node_id(node_id)
    app = registry.build(benchmark)
    if options.campaign is not None:
        from repro.campaign.engine import run_app_jobs
        from repro.campaign.plan import static_jobs

        jobs = static_jobs(
            benchmark,
            points=[point],
            node_id=node_id,
            seed=seed,
            node_seed=cluster.seed,
        )
        payload = run_app_jobs(
            jobs,
            app,
            cluster=cluster,
            engine=options.campaign,
            on_failure=options.on_failure,
            retry_failed=options.retry_failed,
        )[jobs[0]]
        return RunTriple(
            node_energy_j=payload["node_energy_j"],
            cpu_energy_j=payload["cpu_energy_j"],
            time_s=payload["time_s"],
        )
    from repro.execution.simulator import ExecutionSimulator

    node = cluster.fresh_node(node_id)
    node.set_frequencies(point.core_freq_ghz, point.uncore_freq_ghz)
    run = ExecutionSimulator(node, seed=seed).run(
        app,
        threads=point.threads,
        run_key=(
            "static", point.core_freq_ghz, point.uncore_freq_ghz, point.threads
        ),
        fast_path=options.run_fast_path(),
    )
    return RunTriple(
        node_energy_j=run.node_energy_j,
        cpu_energy_j=run.cpu_energy_j,
        time_s=run.time_s,
    )


def savings(
    benchmark: str,
    static_config: OperatingPoint,
    tuning_model,
    *,
    instrumentation=None,
    runs: int = 5,
    node_id: int = 0,
    seed: int = config.DEFAULT_SEED,
    options: ExecutionOptions | None = None,
):
    """The Table VI static/dynamic comparison through the facade.

    Returns a :class:`repro.analysis.savings.BenchmarkSavings`.
    """
    from repro.analysis.savings import compare_static_dynamic

    options = options if options is not None else ExecutionOptions()
    return compare_static_dynamic(
        benchmark,
        static_config,
        tuning_model,
        instrumentation=instrumentation,
        cluster=options.cluster,
        node_id=node_id,
        runs=runs,
        seed=seed,
        options=options,
    )
