"""The 56 standardized PAPI preset counters of the experimental platform.

Names and semantics follow the PAPI preset definitions available on Intel
Haswell-EP; the seven counters of the paper's Table I (``BR_NTK``,
``LD_INS``, ``L2_ICR``, ``BR_MSP``, ``RES_STL``, ``SR_INS``, ``L2_DCR``)
are all members.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro import config
from repro.errors import CounterError


class CounterCategory(enum.Enum):
    """Coarse grouping of preset counters."""

    CACHE = "cache"
    TLB = "tlb"
    BRANCH = "branch"
    INSTRUCTION = "instruction"
    CYCLE = "cycle"
    FLOAT = "float"


@dataclass(frozen=True)
class PapiCounter:
    """One PAPI preset event."""

    name: str
    code: int
    category: CounterCategory
    description: str

    @property
    def short_name(self) -> str:
        """Name without the ``PAPI_`` prefix, as the paper's Table I uses."""
        return self.name.removeprefix("PAPI_")


def _mk(defs: list[tuple[str, CounterCategory, str]]) -> dict[str, PapiCounter]:
    presets = {}
    for i, (name, cat, desc) in enumerate(defs):
        presets[name] = PapiCounter(
            name=name, code=0x8000_0000 | i, category=cat, description=desc
        )
    return presets


_C = CounterCategory

#: All 56 presets, keyed by full name, in PAPI enumeration order.
PAPI_PRESETS: dict[str, PapiCounter] = _mk(
    [
        ("PAPI_L1_DCM", _C.CACHE, "Level 1 data cache misses"),
        ("PAPI_L1_ICM", _C.CACHE, "Level 1 instruction cache misses"),
        ("PAPI_L2_DCM", _C.CACHE, "Level 2 data cache misses"),
        ("PAPI_L2_ICM", _C.CACHE, "Level 2 instruction cache misses"),
        ("PAPI_L1_TCM", _C.CACHE, "Level 1 total cache misses"),
        ("PAPI_L2_TCM", _C.CACHE, "Level 2 total cache misses"),
        ("PAPI_L3_TCM", _C.CACHE, "Level 3 total cache misses"),
        ("PAPI_L3_LDM", _C.CACHE, "Level 3 load misses"),
        ("PAPI_TLB_DM", _C.TLB, "Data TLB misses"),
        ("PAPI_TLB_IM", _C.TLB, "Instruction TLB misses"),
        ("PAPI_L1_LDM", _C.CACHE, "Level 1 load misses"),
        ("PAPI_L1_STM", _C.CACHE, "Level 1 store misses"),
        ("PAPI_L2_LDM", _C.CACHE, "Level 2 load misses"),
        ("PAPI_L2_STM", _C.CACHE, "Level 2 store misses"),
        ("PAPI_PRF_DM", _C.CACHE, "Data prefetch cache misses"),
        ("PAPI_MEM_WCY", _C.CYCLE, "Cycles waiting for memory writes"),
        ("PAPI_STL_ICY", _C.CYCLE, "Cycles with no instruction issue"),
        ("PAPI_FUL_ICY", _C.CYCLE, "Cycles with maximum instruction issue"),
        ("PAPI_STL_CCY", _C.CYCLE, "Cycles with no instructions completed"),
        ("PAPI_FUL_CCY", _C.CYCLE, "Cycles with maximum instructions completed"),
        ("PAPI_BR_UCN", _C.BRANCH, "Unconditional branch instructions"),
        ("PAPI_BR_CN", _C.BRANCH, "Conditional branch instructions"),
        ("PAPI_BR_TKN", _C.BRANCH, "Conditional branch instructions taken"),
        ("PAPI_BR_NTK", _C.BRANCH, "Conditional branch instructions not taken"),
        ("PAPI_BR_MSP", _C.BRANCH, "Conditional branch instructions mispredicted"),
        ("PAPI_BR_PRC", _C.BRANCH, "Conditional branch instructions correctly predicted"),
        ("PAPI_TOT_INS", _C.INSTRUCTION, "Instructions completed"),
        ("PAPI_LD_INS", _C.INSTRUCTION, "Load instructions"),
        ("PAPI_SR_INS", _C.INSTRUCTION, "Store instructions"),
        ("PAPI_BR_INS", _C.INSTRUCTION, "Branch instructions"),
        ("PAPI_RES_STL", _C.CYCLE, "Cycles stalled on any resource"),
        ("PAPI_TOT_CYC", _C.CYCLE, "Total cycles"),
        ("PAPI_LST_INS", _C.INSTRUCTION, "Load/store instructions completed"),
        ("PAPI_REF_CYC", _C.CYCLE, "Reference clock cycles"),
        ("PAPI_L2_DCA", _C.CACHE, "Level 2 data cache accesses"),
        ("PAPI_L3_DCA", _C.CACHE, "Level 3 data cache accesses"),
        ("PAPI_L2_DCR", _C.CACHE, "Level 2 data cache reads"),
        ("PAPI_L3_DCR", _C.CACHE, "Level 3 data cache reads"),
        ("PAPI_L2_DCW", _C.CACHE, "Level 2 data cache writes"),
        ("PAPI_L3_DCW", _C.CACHE, "Level 3 data cache writes"),
        ("PAPI_L2_ICH", _C.CACHE, "Level 2 instruction cache hits"),
        ("PAPI_L2_ICA", _C.CACHE, "Level 2 instruction cache accesses"),
        ("PAPI_L3_ICA", _C.CACHE, "Level 3 instruction cache accesses"),
        ("PAPI_L2_ICR", _C.CACHE, "Level 2 instruction cache reads"),
        ("PAPI_L3_ICR", _C.CACHE, "Level 3 instruction cache reads"),
        ("PAPI_L2_TCA", _C.CACHE, "Level 2 total cache accesses"),
        ("PAPI_L3_TCA", _C.CACHE, "Level 3 total cache accesses"),
        ("PAPI_L2_TCR", _C.CACHE, "Level 2 total cache reads"),
        ("PAPI_L3_TCR", _C.CACHE, "Level 3 total cache reads"),
        ("PAPI_L2_TCW", _C.CACHE, "Level 2 total cache writes"),
        ("PAPI_L3_TCW", _C.CACHE, "Level 3 total cache writes"),
        ("PAPI_SP_OPS", _C.FLOAT, "Single precision floating point operations"),
        ("PAPI_DP_OPS", _C.FLOAT, "Double precision floating point operations"),
        ("PAPI_VEC_SP", _C.FLOAT, "Single precision vector/SIMD instructions"),
        ("PAPI_VEC_DP", _C.FLOAT, "Double precision vector/SIMD instructions"),
        ("PAPI_FP_OPS", _C.FLOAT, "Floating point operations"),
    ]
)

assert len(PAPI_PRESETS) == config.PAPI_NUM_PRESET_COUNTERS

#: The seven counters of Table I, in the paper's order.
TABLE1_COUNTERS: tuple[str, ...] = (
    "PAPI_BR_NTK",
    "PAPI_LD_INS",
    "PAPI_L2_ICR",
    "PAPI_BR_MSP",
    "PAPI_RES_STL",
    "PAPI_SR_INS",
    "PAPI_L2_DCR",
)


def preset(name: str) -> PapiCounter:
    """Look up a preset by full (``PAPI_LD_INS``) or short (``LD_INS``) name."""
    if name in PAPI_PRESETS:
        return PAPI_PRESETS[name]
    full = f"PAPI_{name}"
    if full in PAPI_PRESETS:
        return PAPI_PRESETS[full]
    raise CounterError(f"unknown PAPI preset: {name}")


def preset_names() -> tuple[str, ...]:
    """All preset names in enumeration order."""
    return tuple(PAPI_PRESETS)
