"""Native (raw PMU) events of the simulated Haswell-EP.

The paper notes the platform supports 162 native counters, each with many
umask configurations, and that the methodology deliberately restricts
itself to the 56 standardized presets to keep measurement feasible.  We
model the native event *list* (so tooling that enumerates events sees a
realistic inventory) without deriving values for them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import config

_EVENT_GROUPS: list[tuple[str, list[str]]] = [
    ("CPU_CLK_THREAD_UNHALTED", ["THREAD_P", "REF_XCLK", "ONE_THREAD_ACTIVE"]),
    ("INST_RETIRED", ["ANY_P", "PREC_DIST", "X87"]),
    ("UOPS_ISSUED", ["ANY", "FLAGS_MERGE", "SLOW_LEA", "SINGLE_MUL"]),
    ("UOPS_EXECUTED", ["CORE", "STALL_CYCLES", "CYCLES_GE_1_UOP_EXEC"]),
    ("UOPS_RETIRED", ["ALL", "RETIRE_SLOTS", "STALL_CYCLES", "TOTAL_CYCLES"]),
    ("BR_INST_RETIRED", ["ALL_BRANCHES", "CONDITIONAL", "NEAR_CALL", "NEAR_RETURN",
                         "NOT_TAKEN", "NEAR_TAKEN", "FAR_BRANCH"]),
    ("BR_MISP_RETIRED", ["ALL_BRANCHES", "CONDITIONAL", "NEAR_TAKEN"]),
    ("MEM_UOPS_RETIRED", ["ALL_LOADS", "ALL_STORES", "STLB_MISS_LOADS",
                          "STLB_MISS_STORES", "LOCK_LOADS", "SPLIT_LOADS",
                          "SPLIT_STORES"]),
    ("MEM_LOAD_UOPS_RETIRED", ["L1_HIT", "L2_HIT", "L3_HIT", "L1_MISS",
                               "L2_MISS", "L3_MISS", "HIT_LFB"]),
    ("MEM_LOAD_UOPS_L3_HIT_RETIRED", ["XSNP_MISS", "XSNP_HIT", "XSNP_HITM",
                                      "XSNP_NONE"]),
    ("L1D", ["REPLACEMENT"]),
    ("L1D_PEND_MISS", ["PENDING", "PENDING_CYCLES", "FB_FULL"]),
    ("L2_RQSTS", ["DEMAND_DATA_RD_HIT", "ALL_DEMAND_DATA_RD", "RFO_HIT",
                  "RFO_MISS", "ALL_RFO", "CODE_RD_HIT", "CODE_RD_MISS",
                  "ALL_CODE_RD", "ALL_DEMAND_MISS", "ALL_DEMAND_REFERENCES",
                  "MISS", "REFERENCES"]),
    ("L2_TRANS", ["DEMAND_DATA_RD", "RFO", "CODE_RD", "ALL_PF", "L1D_WB",
                  "L2_FILL", "L2_WB", "ALL_REQUESTS"]),
    ("LLC", ["REFERENCE", "MISSES"]),
    ("CYCLE_ACTIVITY", ["CYCLES_L2_PENDING", "CYCLES_LDM_PENDING",
                        "CYCLES_NO_EXECUTE", "STALLS_L2_PENDING",
                        "STALLS_LDM_PENDING", "STALLS_L1D_PENDING"]),
    ("RESOURCE_STALLS", ["ANY", "RS", "SB", "ROB"]),
    ("OFFCORE_REQUESTS", ["DEMAND_DATA_RD", "DEMAND_CODE_RD", "DEMAND_RFO",
                          "ALL_DATA_RD"]),
    ("OFFCORE_RESPONSE", ["DMND_DATA_RD", "DMND_RFO", "PF_DATA_RD"]),
    ("DTLB_LOAD_MISSES", ["MISS_CAUSES_A_WALK", "WALK_COMPLETED",
                          "WALK_DURATION", "STLB_HIT"]),
    ("DTLB_STORE_MISSES", ["MISS_CAUSES_A_WALK", "WALK_COMPLETED",
                           "WALK_DURATION", "STLB_HIT"]),
    ("ITLB_MISSES", ["MISS_CAUSES_A_WALK", "WALK_COMPLETED", "WALK_DURATION"]),
    ("ICACHE", ["HIT", "MISSES", "IFETCH_STALL"]),
    ("IDQ", ["EMPTY", "MITE_UOPS", "DSB_UOPS", "MS_UOPS", "ALL_DSB_CYCLES_4_UOPS"]),
    ("ILD_STALL", ["LCP", "IQ_FULL"]),
    ("LD_BLOCKS", ["STORE_FORWARD", "NO_SR"]),
    ("MACHINE_CLEARS", ["MEMORY_ORDERING", "SMC", "MASKMOV", "COUNT"]),
    ("FP_ASSIST", ["X87_OUTPUT", "X87_INPUT", "SIMD_OUTPUT", "SIMD_INPUT", "ANY"]),
    ("AVX_INSTS", ["ALL"]),
    ("ARITH", ["DIVIDER_UOPS"]),
    ("MOVE_ELIMINATION", ["INT_ELIMINATED", "SIMD_ELIMINATED",
                          "INT_NOT_ELIMINATED", "SIMD_NOT_ELIMINATED"]),
    ("ROB_MISC_EVENTS", ["LBR_INSERTS"]),
    ("RS_EVENTS", ["EMPTY_CYCLES", "EMPTY_END"]),
    ("LSD", ["UOPS", "CYCLES_ACTIVE"]),
    ("DSB2MITE_SWITCHES", ["PENALTY_CYCLES", "COUNT"]),
    ("TLB_FLUSH", ["DTLB_THREAD", "STLB_ANY"]),
    ("PAGE_WALKER_LOADS", ["DTLB_L1", "DTLB_L2", "DTLB_L3", "DTLB_MEMORY",
                           "ITLB_L1", "ITLB_L2", "ITLB_L3"]),
    ("LOCK_CYCLES", ["SPLIT_LOCK_UC_LOCK_DURATION", "CACHE_LOCK_DURATION"]),
    ("SQ_MISC", ["SPLIT_LOCK"]),
    ("CPL_CYCLES", ["RING0", "RING123", "RING0_TRANS"]),
    ("OTHER_ASSISTS", ["ANY_WB_ASSIST"]),
    ("BACLEARS", ["ANY"]),
    ("LONGEST_LAT_CACHE", ["MISS", "REFERENCE"]),
    ("MISALIGN_MEM_REF", ["LOADS", "STORES"]),
    ("UOPS_DISPATCHED_PORT", ["PORT_0", "PORT_1", "PORT_2", "PORT_3", "PORT_4",
                              "PORT_5", "PORT_6", "PORT_7"]),
]


@dataclass(frozen=True)
class NativeEvent:
    """One native PMU event configuration (event + umask)."""

    name: str
    event_group: str
    umask: str


def _build() -> dict[str, NativeEvent]:
    events: dict[str, NativeEvent] = {}
    for group, umasks in _EVENT_GROUPS:
        for umask in umasks:
            name = f"{group}.{umask}"
            events[name] = NativeEvent(name=name, event_group=group, umask=umask)
    return events


#: All native events, keyed by ``GROUP.UMASK`` name.
NATIVE_EVENTS: dict[str, NativeEvent] = _build()

assert len(NATIVE_EVENTS) == config.PAPI_NUM_NATIVE_COUNTERS, len(NATIVE_EVENTS)
