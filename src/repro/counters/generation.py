"""Derivation of PAPI counter values from workload characteristics.

The simulated PMU produces all 56 preset values for a region instance
from its :class:`~repro.workloads.characteristics.WorkloadCharacteristics`
plus the execution context (measured cycles depend on run time and
frequency; everything else is frequency-independent, per Section IV-B of
the paper).  Run-to-run variation is a small lognormal factor keyed by
the measurement context, so repeated runs differ slightly — which is why
the data-acquisition layer averages across runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import config
from repro.counters.papi import PAPI_PRESETS
from repro.errors import CounterError
from repro.util.rng import StreamPrefix, batched_lognormal, rng_for
from repro.workloads.characteristics import WorkloadCharacteristics

#: Multiplicative run-to-run counter noise (sigma of the lognormal).
COUNTER_NOISE_SIGMA = 0.015


@dataclass(frozen=True)
class MeasurementContext:
    """Execution context needed for the cycle-family counters."""

    elapsed_s: float
    core_freq_ghz: float
    threads: int

    @property
    def total_cycles(self) -> float:
        """Core cycles accumulated across all active threads."""
        return self.elapsed_s * self.core_freq_ghz * 1e9 * self.threads


def exact_counters(
    chars: WorkloadCharacteristics, ctx: MeasurementContext
) -> dict[str, float]:
    """Noise-free counter values (totals per region instance)."""
    return _counter_values(
        chars,
        cycles=ctx.total_cycles,
        ref_cycles=ctx.elapsed_s * 2.5e9 * ctx.threads,  # TSC reference clock
        minimum=min,
        maximum=max,
    )


def exact_counters_batch(
    chars: WorkloadCharacteristics, ctx: MeasurementContext
) -> dict[str, float | np.ndarray]:
    """Noise-free counters for a *vector* measurement context.

    ``ctx.elapsed_s`` is an array of per-iteration elapsed times; the
    frequency-independent counters come back as scalars (they do not
    vary across iterations) and the cycle family as arrays.  Every
    element equals the scalar :func:`exact_counters` evaluated at that
    iteration's context, bitwise.
    """
    return _counter_values(
        chars,
        cycles=ctx.total_cycles,
        ref_cycles=ctx.elapsed_s * 2.5e9 * ctx.threads,
        minimum=np.minimum,
        maximum=np.maximum,
    )


def _counter_values(
    chars: WorkloadCharacteristics, *, cycles, ref_cycles, minimum, maximum
) -> dict:
    """The 56 preset formulas, generic over scalar/array cycle inputs."""
    ins = chars.instructions
    cond = ins * chars.cond_branch_frac
    taken = cond * chars.branch_taken_frac
    mispredicted = cond * chars.branch_misp_rate
    loads = ins * chars.load_frac
    stores = ins * chars.store_frac
    l1d_misses = chars.l1d_misses
    l1d_load_misses = l1d_misses * chars.load_share
    l1d_store_misses = l1d_misses - l1d_load_misses
    l2d_misses = chars.l2d_misses
    l2d_load_misses = l2d_misses * chars.load_share
    l3d_misses = chars.l3d_misses
    l1i_misses = chars.l1i_misses
    l2i_misses = chars.l2i_misses
    flops = ins * chars.flop_frac
    sp_ops = flops * chars.sp_fraction
    dp_ops = flops - sp_ops
    stall = minimum(chars.stall_cycles, 0.95 * cycles)

    values = {
        "PAPI_TOT_INS": ins,
        "PAPI_LD_INS": loads,
        "PAPI_SR_INS": stores,
        "PAPI_LST_INS": loads + stores,
        "PAPI_BR_INS": cond + ins * chars.uncond_branch_frac,
        "PAPI_BR_CN": cond,
        "PAPI_BR_UCN": ins * chars.uncond_branch_frac,
        "PAPI_BR_TKN": taken,
        "PAPI_BR_NTK": cond - taken,
        "PAPI_BR_MSP": mispredicted,
        "PAPI_BR_PRC": cond - mispredicted,
        # L1
        "PAPI_L1_DCM": l1d_misses,
        "PAPI_L1_ICM": l1i_misses,
        "PAPI_L1_TCM": l1d_misses + l1i_misses,
        "PAPI_L1_LDM": l1d_load_misses,
        "PAPI_L1_STM": l1d_store_misses,
        # L2 data side: accesses are L1 misses; reads are load-side.
        "PAPI_L2_DCA": l1d_misses,
        "PAPI_L2_DCR": l1d_load_misses,
        "PAPI_L2_DCW": l1d_store_misses,
        "PAPI_L2_DCM": l2d_misses,
        "PAPI_L2_LDM": l2d_load_misses,
        "PAPI_L2_STM": l2d_misses - l2d_load_misses,
        # L2 instruction side
        "PAPI_L2_ICA": l1i_misses,
        "PAPI_L2_ICR": l1i_misses,
        "PAPI_L2_ICH": l1i_misses - l2i_misses,
        "PAPI_L2_ICM": l2i_misses,
        "PAPI_L2_TCA": l1d_misses + l1i_misses,
        "PAPI_L2_TCR": l1d_load_misses + l1i_misses,
        "PAPI_L2_TCW": l1d_store_misses,
        "PAPI_L2_TCM": l2d_misses + l2i_misses,
        # L3
        "PAPI_L3_DCA": l2d_misses,
        "PAPI_L3_DCR": l2d_load_misses,
        "PAPI_L3_DCW": l2d_misses - l2d_load_misses,
        "PAPI_L3_ICA": l2i_misses,
        "PAPI_L3_ICR": l2i_misses,
        "PAPI_L3_TCA": l2d_misses + l2i_misses,
        "PAPI_L3_TCR": l2d_load_misses + l2i_misses,
        "PAPI_L3_TCW": l2d_misses - l2d_load_misses,
        "PAPI_L3_TCM": l3d_misses,
        "PAPI_L3_LDM": l3d_misses * chars.load_share,
        "PAPI_PRF_DM": l3d_misses * chars.prefetch_frac,
        # TLB
        "PAPI_TLB_DM": chars.data_accesses * chars.tlb_dm_rate,
        "PAPI_TLB_IM": ins * chars.tlb_im_rate,
        # Cycle family (context dependent)
        "PAPI_TOT_CYC": cycles,
        "PAPI_REF_CYC": ref_cycles,
        "PAPI_RES_STL": stall,
        "PAPI_MEM_WCY": stall * (1.0 - chars.load_share) * 0.5,
        "PAPI_STL_ICY": stall * 0.6,
        "PAPI_STL_CCY": stall * 0.8,
        "PAPI_FUL_ICY": maximum(0.0, cycles - stall) * 0.25,
        "PAPI_FUL_CCY": maximum(0.0, cycles - stall) * 0.15,
        # Floating point
        "PAPI_FP_OPS": flops,
        "PAPI_SP_OPS": sp_ops,
        "PAPI_DP_OPS": dp_ops,
        "PAPI_VEC_SP": sp_ops * chars.vector_frac / 8.0,   # 8 SP lanes (AVX2)
        "PAPI_VEC_DP": dp_ops * chars.vector_frac / 4.0,   # 4 DP lanes
    }
    missing = set(PAPI_PRESETS) - set(values)
    if missing:
        raise CounterError(f"counter derivation incomplete: missing {sorted(missing)}")
    return values


class CounterGenerator:
    """Generates noisy counter readings for region instances.

    Parameters
    ----------
    seed:
        Experiment seed; combined with the measurement key so each
        (region, run) pair has its own reproducible noise.
    """

    def __init__(self, seed: int = config.DEFAULT_SEED):
        self._seed = seed

    def sample(
        self,
        chars: WorkloadCharacteristics,
        ctx: MeasurementContext,
        *,
        key: tuple = (),
    ) -> dict[str, float]:
        """All 56 preset values with run-to-run noise applied."""
        exact = exact_counters(chars, ctx)
        rng = rng_for("papi", *key, seed=self._seed)
        noise = rng.lognormal(0.0, COUNTER_NOISE_SIGMA, size=len(exact))
        return {
            name: value * float(n)
            for (name, value), n in zip(exact.items(), noise)
        }

    def sample_batch(
        self,
        chars: WorkloadCharacteristics,
        ctx: MeasurementContext,
        *,
        key_prefix: tuple = (),
    ) -> dict[str, np.ndarray]:
        """Noisy counters for all iterations of one region at once.

        ``ctx.elapsed_s`` is the per-iteration elapsed-time vector; row
        ``i`` of every returned array is bit-identical to
        ``sample(chars, ctx_i, key=(*key_prefix, i))`` — the iteration
        index extends the key exactly as the scalar path builds it, and
        the noise factors come from the same per-key streams via the
        batched draw machinery in :mod:`repro.util.rng`.
        """
        iterations = len(ctx.elapsed_s)
        exact = exact_counters_batch(chars, ctx)
        prefix = StreamPrefix("papi", *key_prefix, seed=self._seed)
        noise = batched_lognormal(
            prefix.seeds_for_iterations(iterations),
            COUNTER_NOISE_SIGMA,
            size=len(exact),
        )
        return {
            name: value * noise[:, column]
            for column, (name, value) in enumerate(exact.items())
        }
