"""PAPI event sets with the hardware's simultaneous-counter limit.

A Haswell core has four programmable counters, so at most four preset
events can be recorded in one run (Section IV-A: "multiple runs of the
same application are required due to hardware limitations on the
simultaneous recording of multiple performance metrics").
:class:`MultiplexSchedule` plans the minimal set of runs needed to cover
a list of events.
"""

from __future__ import annotations

from repro import config
from repro.counters.papi import preset
from repro.errors import EventSetError


class EventSet:
    """One run's worth of simultaneously-recorded PAPI events."""

    def __init__(self, max_events: int = config.PAPI_MAX_SIMULTANEOUS_EVENTS):
        if max_events <= 0:
            raise EventSetError("event set capacity must be positive")
        self._max_events = max_events
        self._events: list[str] = []
        self._running = False
        self._values: dict[str, float] | None = None

    @property
    def events(self) -> tuple[str, ...]:
        return tuple(self._events)

    def add_event(self, name: str) -> None:
        """Add a preset event; rejects duplicates and overflow."""
        canonical = preset(name).name
        if self._running:
            raise EventSetError("cannot modify a running event set")
        if canonical in self._events:
            raise EventSetError(f"event already in set: {canonical}")
        if len(self._events) >= self._max_events:
            raise EventSetError(
                "event set full: hardware supports only "
                f"{self._max_events} simultaneous events"
            )
        self._events.append(canonical)

    def start(self) -> None:
        if self._running:
            raise EventSetError("event set already started")
        if not self._events:
            raise EventSetError("cannot start an empty event set")
        self._running = True
        self._values = None

    def stop(self, measurement: dict[str, float]) -> dict[str, float]:
        """Stop counting; ``measurement`` is the full PMU reading for the run.

        Only the subset this event set was programmed for is visible —
        exactly the hardware restriction the multiplexing works around.
        """
        if not self._running:
            raise EventSetError("event set not running")
        self._running = False
        self._values = {name: measurement[name] for name in self._events}
        return dict(self._values)

    def read(self) -> dict[str, float]:
        if self._values is None:
            raise EventSetError("no measurement available; run start/stop first")
        return dict(self._values)


class MultiplexSchedule:
    """Plan of measurement runs covering an arbitrary event list."""

    def __init__(
        self,
        event_names: list[str] | tuple[str, ...],
        max_events: int = config.PAPI_MAX_SIMULTANEOUS_EVENTS,
    ):
        canonical = [preset(n).name for n in event_names]
        if len(set(canonical)) != len(canonical):
            raise EventSetError("duplicate events in multiplex request")
        self._groups = [
            tuple(canonical[i : i + max_events])
            for i in range(0, len(canonical), max_events)
        ]
        self._max_events = max_events

    @property
    def num_runs(self) -> int:
        """Number of application runs needed to cover all events."""
        return len(self._groups)

    @property
    def groups(self) -> tuple[tuple[str, ...], ...]:
        return tuple(self._groups)

    def event_sets(self) -> list[EventSet]:
        """Materialise one programmed :class:`EventSet` per run."""
        sets = []
        for group in self._groups:
            es = EventSet(self._max_events)
            for name in group:
                es.add_event(name)
            sets.append(es)
        return sets
