"""PAPI performance-counter subsystem.

Models the measurement constraints of Section IV-A: the platform exposes
56 standardized PAPI preset counters (plus 162 native events), but the
PMU can record only four programmable events simultaneously, so reading
all presets needs multiple application runs whose values are averaged.
"""

from repro.counters.papi import (
    PAPI_PRESETS,
    TABLE1_COUNTERS,
    PapiCounter,
    preset,
    preset_names,
)
from repro.counters.native import NATIVE_EVENTS, NativeEvent
from repro.counters.eventset import EventSet, MultiplexSchedule
from repro.counters.generation import (
    CounterGenerator,
    MeasurementContext,
    exact_counters,
)

__all__ = [
    "PAPI_PRESETS",
    "TABLE1_COUNTERS",
    "PapiCounter",
    "preset",
    "preset_names",
    "NATIVE_EVENTS",
    "NativeEvent",
    "EventSet",
    "MultiplexSchedule",
    "CounterGenerator",
    "MeasurementContext",
    "exact_counters",
]
