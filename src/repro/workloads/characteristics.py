"""Workload characteristics: the application-side ground truth.

A region of an application is described by its *characteristics* — total
dynamic instruction count, instruction mix, cache-miss rates, achievable
IPC, parallel fraction and compute/memory overlap.  Everything else is
derived: PAPI counter values (:mod:`repro.counters.generation`), region
run time under any (CF, UCF, threads) operating point
(:mod:`repro.execution.timing`) and therefore energy.

The characteristics are *frequency independent* by construction, matching
the paper's observation (Section IV-B) that the selected counters depend
only on the application, which is what allows measuring them once at the
calibration frequencies.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.util.validation import check_fraction, check_positive

#: Bytes moved per last-level-cache miss (one cache line).
CACHE_LINE_BYTES = 64


@dataclass(frozen=True)
class WorkloadCharacteristics:
    """Per-region-instance workload description.

    All "count" quantities are totals over one execution of the region
    (all threads combined), so they do not change with the thread count —
    only how fast they are processed does.
    """

    #: Total dynamic instructions retired per region instance.
    instructions: float
    #: Retire IPC of the compute portion (excluding memory stalls), per core.
    ipc: float = 1.6

    # -- instruction mix -------------------------------------------------
    load_frac: float = 0.25
    store_frac: float = 0.10
    cond_branch_frac: float = 0.12
    uncond_branch_frac: float = 0.02
    branch_taken_frac: float = 0.60
    branch_misp_rate: float = 0.02
    flop_frac: float = 0.20
    sp_fraction: float = 0.0
    vector_frac: float = 0.5

    # -- cache behaviour --------------------------------------------------
    l1d_miss_rate: float = 0.05   #: misses per data access
    l2d_miss_rate: float = 0.30   #: misses per L1D miss
    l3d_miss_rate: float = 0.30   #: misses per L2D miss
    l1i_miss_rate: float = 0.002  #: misses per instruction
    l2i_miss_rate: float = 0.15   #: misses per L1I miss
    tlb_dm_rate: float = 5e-4     #: per data access
    tlb_im_rate: float = 2e-5     #: per instruction
    writeback_frac: float = 0.30  #: extra DRAM traffic for dirty evictions
    prefetch_frac: float = 0.20   #: prefetch misses relative to demand misses
    stall_penalty_cycles: float = 150.0  #: effective cycles per L3 miss

    # -- parallel behaviour ------------------------------------------------
    parallel_fraction: float = 0.99   #: Amdahl parallel fraction
    thread_overhead: float = 0.0012   #: per-extra-thread serialization
    overlap: float = 0.85             #: compute/memory overlap [0, 1]

    def __post_init__(self) -> None:
        check_positive("instructions", self.instructions)
        check_positive("ipc", self.ipc)
        for name in (
            "load_frac", "store_frac", "cond_branch_frac", "uncond_branch_frac",
            "branch_taken_frac", "branch_misp_rate", "flop_frac", "sp_fraction",
            "vector_frac", "l1d_miss_rate", "l2d_miss_rate", "l3d_miss_rate",
            "l1i_miss_rate", "l2i_miss_rate", "tlb_dm_rate", "tlb_im_rate",
            "writeback_frac", "prefetch_frac", "parallel_fraction", "overlap",
        ):
            check_fraction(name, getattr(self, name))
        mix = (
            self.load_frac + self.store_frac + self.cond_branch_frac
            + self.uncond_branch_frac
        )
        if mix > 1.0 + 1e-9:
            raise ValueError(f"instruction mix fractions sum to {mix} > 1")
        check_positive("stall_penalty_cycles", self.stall_penalty_cycles)
        check_positive("thread_overhead", self.thread_overhead, strict=False)

    # -- derived cache/memory quantities ------------------------------------
    @property
    def data_accesses(self) -> float:
        return self.instructions * (self.load_frac + self.store_frac)

    @property
    def load_share(self) -> float:
        total = self.load_frac + self.store_frac
        return self.load_frac / total if total > 0 else 0.0

    @property
    def l1d_misses(self) -> float:
        return self.data_accesses * self.l1d_miss_rate

    @property
    def l2d_misses(self) -> float:
        return self.l1d_misses * self.l2d_miss_rate

    @property
    def l3d_misses(self) -> float:
        return self.l2d_misses * self.l3d_miss_rate

    @property
    def l1i_misses(self) -> float:
        return self.instructions * self.l1i_miss_rate

    @property
    def l2i_misses(self) -> float:
        return self.l1i_misses * self.l2i_miss_rate

    @property
    def memory_bytes(self) -> float:
        """DRAM traffic per region instance (demand + prefetch + writeback)."""
        demand_lines = self.l3d_misses * (1.0 + self.prefetch_frac)
        return demand_lines * (1.0 + self.writeback_frac) * CACHE_LINE_BYTES

    @property
    def compute_cycles(self) -> float:
        """Core cycles needed by the compute portion (single-thread total)."""
        return self.instructions / self.ipc

    @property
    def stall_cycles(self) -> float:
        """Resource-stall cycles attributable to memory (``RES_STL`` source)."""
        return self.l3d_misses * self.stall_penalty_cycles

    @property
    def memory_intensity(self) -> float:
        """DRAM bytes per instruction — the compute/memory-boundedness knob."""
        return self.memory_bytes / self.instructions

    # -- helpers -------------------------------------------------------------
    def scaled(self, factor: float) -> "WorkloadCharacteristics":
        """Same behaviour, ``factor``-times the work (used to split regions)."""
        check_positive("factor", factor)
        return replace(self, instructions=self.instructions * factor)

    def with_(self, **kwargs) -> "WorkloadCharacteristics":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)
