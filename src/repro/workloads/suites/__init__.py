"""Synthetic versions of the paper's 19 benchmarks (Table II).

Each module builds one suite's applications as region trees whose
characteristics are calibrated so the boundedness class — and therefore
the optimal operating point — matches what the paper reports: Lulesh,
miniMD, BEM4I, Amg2013 compute-leaning (high CF, low-to-mid UCF),
Mcbenchmark, CG, MG, IS, XSBench memory-bound (low CF, high UCF).
"""

from repro.workloads.suites import bem4i, coral, llcbench, mantevo, npb

__all__ = ["npb", "coral", "mantevo", "llcbench", "bem4i"]
