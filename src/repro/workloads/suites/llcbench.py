"""LLCBench suite: Blasbench — dense linear algebra microbenchmark."""

from __future__ import annotations

from repro.workloads.application import Application, ProgrammingModel
from repro.workloads.region import Region, RegionKind
from repro.workloads.suites.common import (
    build_phase,
    compute_profile,
    moderate_profile,
    significant,
    tiny,
)


def blasbench() -> Application:
    """Blasbench: BLAS level 1-3 kernels — dense compute, cache friendly."""
    regions = [
        significant(
            "dgemm_kernel",
            compute_profile(instructions=5.4e10, flop_frac=0.55, ipc=2.3,
                            l1d_miss_rate=0.03, l3d_miss_rate=0.22),
            kind=RegionKind.OMP_PARALLEL,
            internal_events=12,
        ),
        significant(
            "dgemv_kernel",
            moderate_profile(instructions=1.8e10, l1d_miss_rate=0.19),
            kind=RegionKind.OMP_PARALLEL,
            internal_events=12,
        ),
        tiny("daxpy_warmup", calls_per_phase=24),
    ]
    return Application(
        name="Blasbench",
        suite="LLCBench",
        model=ProgrammingModel.HYBRID,
        main=_main(regions),
        phase_iterations=7,
        description="BLAS performance characterization kernels",
    )


def _main(regions) -> Region:
    main = Region(name="main", kind=RegionKind.FUNCTION)
    main.add_child(build_phase(regions))
    return main


ALL = {"Blasbench": blasbench}
