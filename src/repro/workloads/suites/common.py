"""Shared helpers for building suite benchmarks.

The *profiles* are instruction-mix templates per boundedness class; each
benchmark derives its regions from a profile with per-region deviations,
so regions within one application have different optimal configurations —
the heterogeneity region-based (dynamic) tuning exploits.
"""

from __future__ import annotations

from repro.util.rng import rng_for
from repro.workloads.characteristics import WorkloadCharacteristics
from repro.workloads.region import Region, RegionKind, phase_region

#: Baseline instruction count of a significant region instance; chosen so a
#: region runs for a few hundred milliseconds at the calibration point.
SIGNIFICANT_INSTRUCTIONS = 3.0e10
#: Instruction count of a fine-granular (filterable) region.
TINY_INSTRUCTIONS = 2.0e8


def compute_profile(**overrides) -> WorkloadCharacteristics:
    """Strongly compute-bound (EP, Blasbench, miniMD class)."""
    base = dict(
        instructions=SIGNIFICANT_INSTRUCTIONS,
        ipc=2.0,
        load_frac=0.24,
        store_frac=0.09,
        flop_frac=0.35,
        l1d_miss_rate=0.06,
        l2d_miss_rate=0.35,
        l3d_miss_rate=0.35,
        branch_misp_rate=0.008,
        overlap=0.88,
        parallel_fraction=0.995,
        thread_overhead=0.0005,
    )
    base.update(overrides)
    return WorkloadCharacteristics(**base)


def moderate_profile(**overrides) -> WorkloadCharacteristics:
    """Compute-leaning with real memory traffic (Lulesh class)."""
    base = dict(
        instructions=SIGNIFICANT_INSTRUCTIONS,
        ipc=1.8,
        load_frac=0.26,
        store_frac=0.10,
        flop_frac=0.30,
        l1d_miss_rate=0.14,
        l2d_miss_rate=0.45,
        l3d_miss_rate=0.45,
        branch_misp_rate=0.015,
        overlap=0.85,
        parallel_fraction=0.99,
        thread_overhead=0.0005,
    )
    base.update(overrides)
    return WorkloadCharacteristics(**base)


def balanced_profile(**overrides) -> WorkloadCharacteristics:
    """Between compute and memory bound (BEM4I, Amg2013, FT class)."""
    base = dict(
        instructions=SIGNIFICANT_INSTRUCTIONS,
        ipc=1.3,
        load_frac=0.28,
        store_frac=0.11,
        flop_frac=0.25,
        l1d_miss_rate=0.22,
        l2d_miss_rate=0.50,
        l3d_miss_rate=0.50,
        branch_misp_rate=0.02,
        overlap=0.86,
        parallel_fraction=0.99,
        thread_overhead=0.0005,
    )
    base.update(overrides)
    return WorkloadCharacteristics(**base)


def memory_profile(**overrides) -> WorkloadCharacteristics:
    """Memory-bandwidth bound (Mcbenchmark, CG, MG, IS class)."""
    base = dict(
        instructions=SIGNIFICANT_INSTRUCTIONS,
        ipc=1.0,
        load_frac=0.32,
        store_frac=0.12,
        flop_frac=0.12,
        l1d_miss_rate=0.32,
        l2d_miss_rate=0.60,
        l3d_miss_rate=0.62,
        branch_misp_rate=0.03,
        stall_penalty_cycles=180.0,
        overlap=0.90,
        parallel_fraction=0.99,
        thread_overhead=0.0012,
    )
    base.update(overrides)
    return WorkloadCharacteristics(**base)


def diversify_mix(
    chars: WorkloadCharacteristics, key: str
) -> WorkloadCharacteristics:
    """Give a region an individual instruction-mix flavour.

    Real codes differ widely in load/store ratios, branch behaviour,
    floating-point content and instruction-cache footprint — the
    diversity the counter-selection algorithm of Table I relies on.
    Only *counter-flavour* fields are perturbed; everything the timing
    and power models consume (instructions, IPC, data-cache miss rates,
    the combined load+store fraction, overlap, thread scaling) is
    preserved, so the calibrated optima are untouched.
    """
    rng = rng_for("mix-diversity", key)
    data_frac = chars.load_frac + chars.store_frac
    # Fields feeding the model's seven features vary mildly (they must
    # keep encoding boundedness); counters outside the feature set vary
    # widely (they drive the Table I selection's diversity).
    load_share = float(rng.uniform(0.68, 0.78))
    return chars.with_(
        load_frac=data_frac * load_share,
        store_frac=data_frac * (1.0 - load_share),
        cond_branch_frac=float(rng.uniform(0.10, 0.14)),
        uncond_branch_frac=float(rng.uniform(0.01, 0.04)),
        branch_taken_frac=float(rng.uniform(0.55, 0.65)),
        branch_misp_rate=float(rng.uniform(0.010, 0.030)),
        flop_frac=float(rng.uniform(0.02, 0.45)),
        sp_fraction=float(rng.uniform(0.0, 0.3)),
        vector_frac=float(rng.uniform(0.2, 0.8)),
        l1i_miss_rate=float(rng.uniform(1.5e-3, 3.0e-3)),
        l2i_miss_rate=float(rng.uniform(0.08, 0.30)),
        tlb_dm_rate=float(chars.tlb_dm_rate * rng.uniform(0.3, 3.0)),
        tlb_im_rate=float(chars.tlb_im_rate * rng.uniform(0.3, 3.0)),
        stall_penalty_cycles=float(
            chars.stall_penalty_cycles * rng.uniform(0.92, 1.08)
        ),
    )


def significant(
    name: str,
    chars: WorkloadCharacteristics,
    *,
    kind: RegionKind = RegionKind.FUNCTION,
    internal_events: int = 24,
    calls_per_phase: int = 1,
) -> Region:
    """A tunable region: big enough to pass the 100 ms threshold."""
    return Region(
        name=name,
        kind=kind,
        characteristics=diversify_mix(chars, name),
        internal_events=internal_events,
        calls_per_phase=calls_per_phase,
    )


def tiny(
    name: str,
    *,
    kind: RegionKind = RegionKind.FUNCTION,
    calls_per_phase: int = 40,
    profile: WorkloadCharacteristics | None = None,
) -> Region:
    """A fine-granular region that run-time filtering should suppress."""
    chars = (profile or compute_profile()).with_(instructions=TINY_INSTRUCTIONS)
    return Region(
        name=name,
        kind=kind,
        characteristics=diversify_mix(chars, name),
        internal_events=4,
        calls_per_phase=calls_per_phase,
    )


def build_phase(regions: list[Region]) -> Region:
    """Assemble the phase region from its children."""
    return phase_region(regions)
