"""Mantevo suite: CoMD (MPI) and miniMD (hybrid) molecular dynamics."""

from __future__ import annotations

from repro.workloads.application import Application, ProgrammingModel
from repro.workloads.region import Region, RegionKind
from repro.workloads.suites.common import (
    balanced_profile,
    build_phase,
    compute_profile,
    moderate_profile,
    significant,
    tiny,
)


def comd() -> Application:
    """CoMD: classical MD reference — compute bound, MPI only."""
    regions = [
        significant(
            "computeForce",
            compute_profile(instructions=4.6e10, flop_frac=0.42, ipc=2.1,
                            l1d_miss_rate=0.05),
        ),
        significant("advanceVelocity", moderate_profile(instructions=1.6e10)),
        Region(
            name="MPI_haloExchange",
            kind=RegionKind.MPI,
            characteristics=balanced_profile(instructions=6.0e8).with_(
                parallel_fraction=0.2
            ),
            internal_events=14,
            calls_per_phase=6,
        ),
        tiny("redistributeAtoms"),
    ]
    return Application(
        name="CoMD",
        suite="Mantevo",
        model=ProgrammingModel.MPI,
        main=_main(regions),
        phase_iterations=8,
        description="Classical molecular dynamics proxy (EAM potential)",
    )


def minimd() -> Application:
    """miniMD: Lennard-Jones MD — strongly compute bound (paper: 2.5|1.5).

    Three significant regions; ``neighbor_build`` touches more memory than
    the force kernel, so region-based tuning assigns it a higher UCF.
    """
    regions = [
        significant(
            "force_compute",
            compute_profile(instructions=5.2e10, flop_frac=0.45, ipc=2.15,
                            l1d_miss_rate=0.045, l3d_miss_rate=0.28),
            kind=RegionKind.OMP_PARALLEL,
            internal_events=20,
        ),
        significant(
            "neighbor_build",
            moderate_profile(instructions=2.0e10, l1d_miss_rate=0.16),
            kind=RegionKind.OMP_PARALLEL,
            internal_events=22,
        ),
        significant(
            "integrate",
            compute_profile(instructions=1.6e10, l1d_miss_rate=0.07),
            kind=RegionKind.OMP_PARALLEL,
            internal_events=16,
        ),
        tiny("pbc_wrap", calls_per_phase=12),
    ]
    return Application(
        name="miniMD",
        suite="Mantevo",
        model=ProgrammingModel.HYBRID,
        main=_main(regions),
        phase_iterations=9,
        description="Lennard-Jones molecular dynamics mini-app",
    )


def _main(regions) -> Region:
    main = Region(name="main", kind=RegionKind.FUNCTION)
    main.add_child(build_phase(regions))
    return main


ALL = {"CoMD": comd, "miniMD": minimd}
