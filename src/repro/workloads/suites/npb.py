"""NAS Parallel Benchmarks (NPB-3.3): CG, DC, EP, FT, IS, MG, BT, BT-MZ, SP-MZ.

Per the paper: CG, DC, EP, FT, IS, MG and BT are the OpenMP
implementations; BT-MZ and SP-MZ are the hybrid multi-zone versions.
Characteristics follow the well-known boundedness of each kernel: EP is
embarrassingly parallel compute; CG/MG/IS are bandwidth/latency bound;
FT and DC sit in between; BT/SP are compute-leaning stencil solvers.
"""

from __future__ import annotations

from repro.workloads.application import Application, ProgrammingModel
from repro.workloads.region import Region, RegionKind
from repro.workloads.suites.common import (
    balanced_profile,
    build_phase,
    compute_profile,
    memory_profile,
    moderate_profile,
    significant,
    tiny,
)


def cg() -> Application:
    """CG: conjugate gradient, irregular sparse matvec — memory bound."""
    regions = [
        significant(
            "conj_grad",
            memory_profile(instructions=4.5e10, l1d_miss_rate=0.34, ipc=1.3),
            kind=RegionKind.OMP_PARALLEL,
            internal_events=30,
        ),
        significant(
            "sparse_matvec",
            memory_profile(instructions=3.0e10, l1d_miss_rate=0.30),
            kind=RegionKind.OMP_PARALLEL,
        ),
        tiny("norm_temp", profile=memory_profile()),
    ]
    return Application(
        name="CG",
        suite="NPB-3.3",
        model=ProgrammingModel.OPENMP,
        main=_main(regions),
        phase_iterations=8,
        description="Conjugate gradient with irregular memory access",
    )


def dc() -> Application:
    """DC: data cube operator — data-movement heavy."""
    regions = [
        significant(
            "ProcessCube",
            memory_profile(instructions=3.5e10, l1d_miss_rate=0.28, l3d_miss_rate=0.55),
        ),
        significant(
            "WriteViewToDisk",
            balanced_profile(instructions=1.6e10, l1d_miss_rate=0.24),
        ),
        tiny("checksum"),
    ]
    return Application(
        name="DC",
        suite="NPB-3.3",
        model=ProgrammingModel.OPENMP,
        main=_main(regions),
        phase_iterations=6,
        description="Arithmetic data cube operator",
    )


def ep() -> Application:
    """EP: embarrassingly parallel random-number kernel — pure compute."""
    regions = [
        significant(
            "gaussian_pairs",
            compute_profile(
                instructions=6.0e10,
                l1d_miss_rate=0.02,
                l2d_miss_rate=0.25,
                l3d_miss_rate=0.20,
                flop_frac=0.45,
                ipc=2.2,
            ),
            kind=RegionKind.OMP_PARALLEL,
            internal_events=12,
        ),
        tiny("tally_counts"),
    ]
    return Application(
        name="EP",
        suite="NPB-3.3",
        model=ProgrammingModel.OPENMP,
        main=_main(regions),
        phase_iterations=5,
        description="Embarrassingly parallel marsaglia RNG kernel",
    )


def ft() -> Application:
    """FT: 3-D FFT — alternating compute and transpose (bandwidth) phases."""
    regions = [
        significant("fft_xyz", balanced_profile(instructions=3.2e10, flop_frac=0.35)),
        significant(
            "transpose",
            memory_profile(instructions=2.2e10, l1d_miss_rate=0.30),
        ),
        significant("evolve", moderate_profile(instructions=1.8e10)),
        tiny("checksum"),
    ]
    return Application(
        name="FT",
        suite="NPB-3.3",
        model=ProgrammingModel.OPENMP,
        main=_main(regions),
        phase_iterations=6,
        description="3-D fast Fourier transform",
    )


def is_() -> Application:
    """IS: integer bucket sort — random access, memory latency bound."""
    regions = [
        significant(
            "rank",
            memory_profile(
                instructions=3.8e10,
                l1d_miss_rate=0.36,
                l3d_miss_rate=0.68,
                ipc=1.2,
                flop_frac=0.01,
            ),
            kind=RegionKind.OMP_PARALLEL,
        ),
        significant(
            "full_verify",
            memory_profile(instructions=1.5e10, l1d_miss_rate=0.25),
        ),
        tiny("alloc_key_buff"),
    ]
    return Application(
        name="IS",
        suite="NPB-3.3",
        model=ProgrammingModel.OPENMP,
        main=_main(regions),
        phase_iterations=8,
        description="Integer bucket sort",
    )


def mg() -> Application:
    """MG: multigrid V-cycle — long-stride bandwidth bound."""
    regions = [
        significant("resid", memory_profile(instructions=3.0e10, l1d_miss_rate=0.30)),
        significant("psinv", memory_profile(instructions=2.4e10, l1d_miss_rate=0.28)),
        significant(
            "rprj3_interp",
            balanced_profile(instructions=1.8e10, l1d_miss_rate=0.24),
        ),
        tiny("comm3", kind=RegionKind.FUNCTION),
    ]
    return Application(
        name="MG",
        suite="NPB-3.3",
        model=ProgrammingModel.OPENMP,
        main=_main(regions),
        phase_iterations=8,
        description="Multigrid V-cycle on structured grids",
    )


def bt() -> Application:
    """BT: block-tridiagonal solver — compute-leaning stencil code."""
    regions = [
        significant("compute_rhs", moderate_profile(instructions=2.6e10)),
        significant("x_solve", moderate_profile(instructions=2.8e10, ipc=1.9)),
        significant("y_solve", moderate_profile(instructions=2.8e10, ipc=1.9)),
        significant(
            "z_solve",
            moderate_profile(instructions=3.0e10, l1d_miss_rate=0.18),
        ),
        tiny("add"),
    ]
    return Application(
        name="BT",
        suite="NPB-3.3",
        model=ProgrammingModel.OPENMP,
        main=_main(regions),
        phase_iterations=6,
        description="Block-tridiagonal CFD pseudo-application",
    )


def bt_mz() -> Application:
    """BT-MZ: multi-zone hybrid BT with MPI exchange between zones."""
    regions = [
        significant("compute_rhs", moderate_profile(instructions=2.4e10)),
        significant("zone_solve", moderate_profile(instructions=4.2e10, ipc=1.9)),
        Region(
            name="MPI_exch_qbc",
            kind=RegionKind.MPI,
            characteristics=balanced_profile(instructions=6.0e8).with_(
                parallel_fraction=0.2
            ),
            internal_events=16,
            calls_per_phase=4,
        ),
        tiny("timer_sync", kind=RegionKind.MPI),
    ]
    return Application(
        name="BT-MZ",
        suite="NPB-3.3",
        model=ProgrammingModel.HYBRID,
        main=_main(regions),
        phase_iterations=6,
        description="Hybrid multi-zone block-tridiagonal solver",
    )


def sp_mz() -> Application:
    """SP-MZ: multi-zone hybrid scalar-pentadiagonal solver."""
    regions = [
        significant("compute_rhs", moderate_profile(instructions=2.2e10)),
        significant(
            "zone_solve",
            moderate_profile(instructions=3.8e10, l1d_miss_rate=0.16),
        ),
        Region(
            name="MPI_exch_qbc",
            kind=RegionKind.MPI,
            characteristics=balanced_profile(instructions=5.0e8).with_(
                parallel_fraction=0.2
            ),
            internal_events=16,
            calls_per_phase=4,
        ),
        tiny("txinvr"),
    ]
    return Application(
        name="SP-MZ",
        suite="NPB-3.3",
        model=ProgrammingModel.HYBRID,
        main=_main(regions),
        phase_iterations=6,
        description="Hybrid multi-zone scalar-pentadiagonal solver",
    )


def _main(regions) -> Region:
    main = Region(name="main", kind=RegionKind.FUNCTION)
    main.add_child(build_phase(regions))
    return main


ALL = {
    "CG": cg,
    "DC": dc,
    "EP": ep,
    "FT": ft,
    "IS": is_,
    "MG": mg,
    "BT": bt,
    "BT-MZ": bt_mz,
    "SP-MZ": sp_mz,
}
