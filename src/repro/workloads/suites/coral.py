"""CORAL suite benchmarks: Amg2013, Lulesh, miniFE, XSBench, Kripke, Mcb.

Lulesh and Mcbenchmark carry the exact significant-region names the
paper's Tables III and IV report, since the region-level results are
reproduced against them.
"""

from __future__ import annotations

from repro.workloads.application import Application, ProgrammingModel
from repro.workloads.region import Region, RegionKind
from repro.workloads.suites.common import (
    balanced_profile,
    build_phase,
    memory_profile,
    moderate_profile,
    significant,
    tiny,
)


def lulesh() -> Application:
    """Lulesh: shock hydrodynamics — compute-bound, five significant regions.

    Region names follow Table III.  ``ApplyMaterialPropertiesForElems``
    has more synchronization (its optimal thread count in the paper is 20,
    not 24), ``CalcKinematicsForElems`` slightly more memory traffic (its
    optimal CF is 2.4 vs 2.5 for the others).
    """
    regions = [
        significant(
            "IntegrateStressForElems",
            moderate_profile(instructions=3.4e10, ipc=1.9, l1d_miss_rate=0.12),
            internal_events=28,
        ),
        significant(
            "CalcFBHourglassForceForElems",
            moderate_profile(instructions=4.2e10, ipc=1.9, l1d_miss_rate=0.12,
                             flop_frac=0.38),
            internal_events=28,
        ),
        significant(
            "CalcKinematicsForElems",
            moderate_profile(instructions=2.8e10, l1d_miss_rate=0.17),
            internal_events=24,
        ),
        significant(
            "CalcQForElems",
            moderate_profile(instructions=2.6e10, ipc=1.85, l1d_miss_rate=0.13),
            internal_events=24,
        ),
        significant(
            "ApplyMaterialPropertiesForElems",
            moderate_profile(
                instructions=2.2e10,
                l1d_miss_rate=0.15,
                parallel_fraction=0.985,
                thread_overhead=0.001,
            ),
            internal_events=24,
        ),
        tiny("CalcTimeConstraintsForElems"),
        tiny("LagrangeNodal_misc", calls_per_phase=20),
    ]
    return Application(
        name="Lulesh",
        suite="CORAL",
        model=ProgrammingModel.HYBRID,
        main=_main(regions),
        phase_iterations=10,
        description="Livermore unstructured Lagrangian shock hydrodynamics",
    )


def amg2013() -> Application:
    """Amg2013: algebraic multigrid — balanced, scales best at 16 threads."""
    overhead = 0.002  # synchronization-heavy: interior 16-thread optimum
    regions = [
        significant(
            "hypre_BoomerAMGSolve",
            balanced_profile(instructions=4.0e10, ipc=2.0, overlap=0.70,
                             thread_overhead=overhead, parallel_fraction=0.985),
            internal_events=36,
        ),
        significant(
            "hypre_BoomerAMGRelax",
            balanced_profile(instructions=3.2e10, ipc=2.0, overlap=0.70,
                             l1d_miss_rate=0.24, thread_overhead=overhead,
                             parallel_fraction=0.985),
            internal_events=30,
        ),
        significant(
            "hypre_ParCSRMatvec",
            memory_profile(instructions=2.0e10, ipc=1.8, l1d_miss_rate=0.28,
                           overlap=0.75, thread_overhead=overhead,
                           parallel_fraction=0.985),
            internal_events=26,
        ),
        tiny("hypre_SeqVectorAxpy", calls_per_phase=30),
    ]
    return Application(
        name="Amg2013",
        suite="CORAL",
        model=ProgrammingModel.HYBRID,
        main=_main(regions),
        phase_iterations=8,
        description="Parallel algebraic multigrid solver",
    )


def minife() -> Application:
    """miniFE: implicit finite elements — CG-dominated, bandwidth-leaning."""
    regions = [
        significant(
            "cg_solve",
            memory_profile(instructions=3.6e10, l1d_miss_rate=0.26, ipc=1.5),
            kind=RegionKind.OMP_PARALLEL,
        ),
        significant(
            "matvec",
            memory_profile(instructions=2.8e10, l1d_miss_rate=0.30),
            kind=RegionKind.OMP_PARALLEL,
        ),
        significant("assemble_FE", balanced_profile(instructions=1.8e10)),
        tiny("dot_product", calls_per_phase=50),
    ]
    return Application(
        name="miniFE",
        suite="CORAL",
        model=ProgrammingModel.OPENMP,
        main=_main(regions),
        phase_iterations=7,
        description="Unstructured implicit finite element mini-app",
    )


def xsbench() -> Application:
    """XSBench: Monte Carlo cross-section lookups — latency bound."""
    regions = [
        significant(
            "xs_lookup_kernel",
            memory_profile(
                instructions=4.4e10,
                l1d_miss_rate=0.38,
                l3d_miss_rate=0.70,
                ipc=1.1,
                branch_misp_rate=0.05,
            ),
            kind=RegionKind.OMP_PARALLEL,
            internal_events=20,
        ),
        significant(
            "grid_search",
            memory_profile(instructions=2.0e10, l1d_miss_rate=0.30),
        ),
        tiny("generate_particles"),
    ]
    return Application(
        name="XSBench",
        suite="CORAL",
        model=ProgrammingModel.HYBRID,
        main=_main(regions),
        phase_iterations=7,
        description="Monte Carlo macroscopic cross-section lookup kernel",
    )


def kripke() -> Application:
    """Kripke: deterministic Sn transport sweeps — MPI only, compute-leaning."""
    regions = [
        significant("SweepSolver", moderate_profile(instructions=4.0e10, ipc=1.85)),
        significant("LTimes", moderate_profile(instructions=2.2e10)),
        significant("LPlusTimes", moderate_profile(instructions=2.0e10)),
        Region(
            name="MPI_SweepComm",
            kind=RegionKind.MPI,
            characteristics=balanced_profile(instructions=8.0e8).with_(
                parallel_fraction=0.2
            ),
            internal_events=18,
            calls_per_phase=8,
        ),
        tiny("kernel_misc"),
    ]
    return Application(
        name="Kripke",
        suite="CORAL",
        model=ProgrammingModel.MPI,
        main=_main(regions),
        phase_iterations=6,
        description="3-D Sn deterministic particle transport proxy",
    )


def mcb() -> Application:
    """Mcbenchmark: Monte Carlo burnup — memory bound, five significant regions.

    Region names follow Table IV: two functions and three OpenMP parallel
    constructs.  ``omp parallel:501`` is slightly less bandwidth-hungry
    (its optimum in the paper is 1.7|2.2 vs 1.6|2.3 for the rest).
    """
    mem_overhead = 0.0008  # Mcb's phase optimum is 20 threads
    regions = [
        significant(
            "setupDT",
            memory_profile(instructions=2.4e10, thread_overhead=mem_overhead,
                           parallel_fraction=0.994),
            internal_events=22,
        ),
        significant(
            "advPhoton",
            memory_profile(
                instructions=4.6e10,
                l1d_miss_rate=0.36,
                l3d_miss_rate=0.66,
                thread_overhead=mem_overhead,
                parallel_fraction=0.994,
            ),
            internal_events=30,
        ),
        significant(
            "omp parallel:423",
            memory_profile(instructions=2.6e10, thread_overhead=mem_overhead,
                           parallel_fraction=0.975),
            kind=RegionKind.OMP_PARALLEL,
            internal_events=26,
        ),
        significant(
            "omp parallel:501",
            memory_profile(
                instructions=2.2e10,
                l1d_miss_rate=0.26,
                ipc=1.25,
                overlap=0.86,
                thread_overhead=0.001,
                parallel_fraction=0.993,
            ),
            kind=RegionKind.OMP_PARALLEL,
            internal_events=26,
        ),
        significant(
            "omp parallel:642",
            memory_profile(instructions=2.8e10, l1d_miss_rate=0.33,
                           thread_overhead=mem_overhead, parallel_fraction=0.994),
            kind=RegionKind.OMP_PARALLEL,
            internal_events=26,
        ),
        tiny("collect_tallies", calls_per_phase=16),
    ]
    return Application(
        name="Mcb",
        suite="CORAL",
        model=ProgrammingModel.HYBRID,
        main=_main(regions),
        phase_iterations=8,
        default_threads=24,
        description="Monte Carlo burnup benchmark (memory bound)",
    )


def _main(regions) -> Region:
    main = Region(name="main", kind=RegionKind.FUNCTION)
    main.add_child(build_phase(regions))
    return main


ALL = {
    "Amg2013": amg2013,
    "Lulesh": lulesh,
    "miniFE": minife,
    "XSBench": xsbench,
    "Kripke": kripke,
    "Mcb": mcb,
}
