"""BEM4I: boundary element library solving the 3D Helmholtz Dirichlet problem.

The paper's one real-world application: hybrid, four significant regions,
static optimum 2.3|1.9 at 24 threads — compute-leaning but with more
memory traffic and lower IPC than Lulesh (dense but irregular BEM
assembly).
"""

from __future__ import annotations

from repro.workloads.application import Application, ProgrammingModel
from repro.workloads.region import Region, RegionKind
from repro.workloads.suites.common import (
    balanced_profile,
    build_phase,
    significant,
    tiny,
)


def bem4i() -> Application:
    regions = [
        significant(
            "assembleV",
            balanced_profile(instructions=4.2e10, ipc=1.35, l1d_miss_rate=0.18),
            internal_events=26,
        ),
        significant(
            "assembleK",
            balanced_profile(instructions=3.6e10, ipc=1.3, l1d_miss_rate=0.20),
            internal_events=26,
        ),
        significant(
            "gmres_solve",
            balanced_profile(instructions=3.0e10, l1d_miss_rate=0.24, ipc=1.2),
            internal_events=30,
        ),
        significant(
            "evaluateRepresentation",
            balanced_profile(instructions=1.9e10, ipc=1.4, l1d_miss_rate=0.16),
            internal_events=22,
        ),
        tiny("quadrature_misc", calls_per_phase=30),
    ]
    main = Region(name="main", kind=RegionKind.FUNCTION)
    main.add_child(build_phase(regions))
    return Application(
        name="BEM4I",
        suite="Other",
        model=ProgrammingModel.HYBRID,
        main=main,
        phase_iterations=7,
        description="Boundary element solver for the 3D Helmholtz equation",
    )


ALL = {"BEM4I": bem4i}
