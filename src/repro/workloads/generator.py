"""Synthetic workload generator.

Produces random-but-reproducible applications for training-set
augmentation and property-based testing: every generated region has
characteristics inside the envelope spanned by the real suite profiles,
so anything the test suite asserts about the 19 benchmarks should hold
for generated workloads too.
"""

from __future__ import annotations

from repro import config
from repro.util.rng import rng_for
from repro.workloads.application import Application, ProgrammingModel
from repro.workloads.characteristics import WorkloadCharacteristics
from repro.workloads.region import Region, RegionKind, phase_region


def random_characteristics(
    rng, *, instructions: float | None = None
) -> WorkloadCharacteristics:
    """Sample characteristics uniformly across the boundedness spectrum."""
    memory_leaning = rng.uniform(0.0, 1.0)  # 0 = pure compute, 1 = pure memory
    if instructions is None:
        instructions = float(rng.uniform(1.2e10, 5.5e10))
    return WorkloadCharacteristics(
        instructions=instructions,
        ipc=float(rng.uniform(1.2, 2.3) - 0.4 * memory_leaning),
        load_frac=float(rng.uniform(0.22, 0.34)),
        store_frac=float(rng.uniform(0.08, 0.13)),
        cond_branch_frac=float(rng.uniform(0.08, 0.16)),
        uncond_branch_frac=float(rng.uniform(0.01, 0.03)),
        branch_taken_frac=float(rng.uniform(0.5, 0.7)),
        branch_misp_rate=float(rng.uniform(0.005, 0.05)),
        flop_frac=float(rng.uniform(0.05, 0.5) * (1.0 - 0.5 * memory_leaning)),
        l1d_miss_rate=float(0.03 + 0.33 * memory_leaning * rng.uniform(0.7, 1.3)),
        l2d_miss_rate=float(rng.uniform(0.3, 0.45) + 0.2 * memory_leaning),
        l3d_miss_rate=float(rng.uniform(0.25, 0.45) + 0.25 * memory_leaning),
        overlap=float(rng.uniform(0.82, 0.92)),
        parallel_fraction=float(rng.uniform(0.97, 0.998)),
        thread_overhead=float(rng.uniform(0.001, 0.006)),
        stall_penalty_cycles=float(rng.uniform(120, 200)),
    )


def random_application(
    index: int,
    *,
    seed: int = config.DEFAULT_SEED,
    num_regions: int | None = None,
) -> Application:
    """Generate a deterministic synthetic application ``synthetic-<index>``."""
    rng = rng_for("synthetic-app", index, seed=seed)
    if num_regions is None:
        num_regions = int(rng.integers(2, 6))
    regions = []
    for r in range(num_regions):
        regions.append(
            Region(
                name=f"kernel_{r}",
                kind=RegionKind.OMP_PARALLEL if r % 2 else RegionKind.FUNCTION,
                characteristics=random_characteristics(rng),
                internal_events=int(rng.integers(8, 40)),
            )
        )
    main = Region(name="main", kind=RegionKind.FUNCTION)
    main.add_child(phase_region(regions))
    return Application(
        name=f"synthetic-{index}",
        suite="synthetic",
        model=ProgrammingModel.HYBRID,
        main=main,
        phase_iterations=int(rng.integers(4, 10)),
        description="Generated workload",
    )
