"""Workload models: characteristics, region trees, the Table II roster."""

from repro.workloads.characteristics import WorkloadCharacteristics, CACHE_LINE_BYTES
from repro.workloads.region import Region, RegionKind, phase_region
from repro.workloads.application import Application, BenchmarkInfo, ProgrammingModel
from repro.workloads import registry
from repro.workloads.generator import random_application, random_characteristics

__all__ = [
    "WorkloadCharacteristics",
    "CACHE_LINE_BYTES",
    "Region",
    "RegionKind",
    "phase_region",
    "Application",
    "BenchmarkInfo",
    "ProgrammingModel",
    "registry",
    "random_application",
    "random_characteristics",
]
