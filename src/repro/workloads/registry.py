"""Benchmark registry — Table II of the paper.

Provides lookup by name, the full roster grouped by suite, and the
train/test split used in Section V-B (test set: Lulesh, Amg2013, miniMD,
BEM4I and Mcbenchmark; the remaining 14 benchmarks train the deployed
model).
"""

from __future__ import annotations

from typing import Callable

from repro.errors import WorkloadError
from repro.workloads.application import Application, BenchmarkInfo
from repro.workloads.suites import bem4i, coral, llcbench, mantevo, npb

_BUILDERS: dict[str, Callable[[], Application]] = {}
for module in (npb, coral, mantevo, llcbench, bem4i):
    _BUILDERS.update(module.ALL)

#: Benchmarks the tuning plugin is evaluated on (Section V-B/V-C/V-D).
TEST_BENCHMARKS: tuple[str, ...] = ("Lulesh", "Amg2013", "miniMD", "BEM4I", "Mcb")

#: Memory-bound classification (used in reports, not by the model).
_MEMORY_BOUND = {"CG", "DC", "IS", "MG", "miniFE", "XSBench", "Mcb"}


def benchmark_names() -> tuple[str, ...]:
    """All 19 benchmark names in suite order."""
    return tuple(_BUILDERS)


def build(name: str) -> Application:
    """Construct a fresh application instance for ``name``."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown benchmark: {name!r}; known: {sorted(_BUILDERS)}"
        ) from None
    return builder()


def build_all() -> dict[str, Application]:
    return {name: build(name) for name in _BUILDERS}


def info(name: str) -> BenchmarkInfo:
    app = build(name)
    return BenchmarkInfo(
        name=app.name,
        suite=app.suite,
        model=app.model,
        memory_bound=name in _MEMORY_BOUND,
        description=app.description,
    )


def roster() -> list[BenchmarkInfo]:
    """Table II: every benchmark with suite and programming model."""
    return [info(name) for name in _BUILDERS]


def training_benchmarks() -> tuple[str, ...]:
    """The 14 benchmarks used to train the deployed model (Section V-B)."""
    return tuple(n for n in _BUILDERS if n not in TEST_BENCHMARKS)
