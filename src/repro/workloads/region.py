"""Region trees: the program structure the tuning plugin operates on.

An application is a tree of regions.  The *phase region* is the
single-entry/single-exit body of the main progress loop (annotated with
Score-P macros in the paper); its children are candidate significant
regions (functions, OpenMP parallel constructs); deeper descendants are
the fine-granular regions that run/compile-time filtering suppresses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import WorkloadError
from repro.workloads.characteristics import WorkloadCharacteristics


class RegionKind(enum.Enum):
    """What language construct a region corresponds to."""

    FUNCTION = "function"
    OMP_PARALLEL = "omp_parallel"
    MPI = "mpi"
    PHASE = "phase"
    LOOP = "loop"


@dataclass
class Region:
    """One instrumentable program region.

    Parameters
    ----------
    name:
        Source-level identifier (e.g. ``CalcQForElems`` or
        ``omp parallel:423``).
    kind:
        The construct kind; affects which filtering stage may remove it
        (OpenMP/MPI wrapper events survive compile-time filtering).
    characteristics:
        Work executed by this region itself (exclusive of children); may
        be ``None`` for pure container regions.
    calls_per_phase:
        How many times the region runs per phase iteration.
    internal_events:
        Extra instrumented events fired inside one call (OpenMP implicit
        barriers, MPI wrappers, tiny inlined functions) — the source of
        residual Score-P overhead after filtering.
    """

    name: str
    kind: RegionKind = RegionKind.FUNCTION
    characteristics: WorkloadCharacteristics | None = None
    calls_per_phase: int = 1
    internal_events: int = 0
    children: list["Region"] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkloadError("region name must be non-empty")
        if self.calls_per_phase <= 0:
            raise WorkloadError(f"calls_per_phase must be positive: {self.name}")
        if self.internal_events < 0:
            raise WorkloadError(f"internal_events must be >= 0: {self.name}")

    def add_child(self, child: "Region") -> "Region":
        self.children.append(child)
        return child

    def walk(self) -> Iterator["Region"]:
        """Pre-order traversal of this subtree."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Region":
        for region in self.walk():
            if region.name == name:
                return region
        raise WorkloadError(f"no region named {name!r} under {self.name!r}")

    @property
    def has_work(self) -> bool:
        return self.characteristics is not None

    def __repr__(self) -> str:  # keep the default dataclass repr shallow
        return (
            f"Region({self.name!r}, kind={self.kind.value}, "
            f"children={len(self.children)})"
        )


def phase_region(children: list[Region], name: str = "phase") -> Region:
    """Build a phase region wrapping ``children`` (no own work by default)."""
    region = Region(name=name, kind=RegionKind.PHASE)
    for child in children:
        region.add_child(child)
    return region
