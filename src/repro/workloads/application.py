"""Application model: a region tree plus execution configuration."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro import config
from repro.errors import WorkloadError
from repro.workloads.region import Region, RegionKind


class ProgrammingModel(enum.Enum):
    """How the benchmark is parallelised (Table II)."""

    OPENMP = "OpenMP"
    MPI = "MPI"
    HYBRID = "MPI+OpenMP"

    @property
    def supports_thread_tuning(self) -> bool:
        """Only OpenMP and hybrid codes expose the thread-count knob."""
        return self is not ProgrammingModel.MPI


@dataclass
class Application:
    """One benchmark: metadata, the region tree and loop structure.

    The tree is rooted at ``main``; the phase region (one iteration of the
    main loop) must be a descendant and is executed
    ``phase_iterations`` times per run.
    """

    name: str
    suite: str
    model: ProgrammingModel
    main: Region
    phase_iterations: int = 10
    default_threads: int = config.DEFAULT_OPENMP_THREADS
    description: str = ""

    def __post_init__(self) -> None:
        if self.phase_iterations <= 0:
            raise WorkloadError("phase_iterations must be positive")
        phases = [r for r in self.main.walk() if r.kind is RegionKind.PHASE]
        if len(phases) != 1:
            raise WorkloadError(
                f"{self.name}: application must have exactly one phase region, "
                f"found {len(phases)}"
            )
        self._phase = phases[0]

    @property
    def phase(self) -> Region:
        """The phase region (one main-loop iteration)."""
        return self._phase

    @property
    def regions(self) -> tuple[Region, ...]:
        """All regions of the application in pre-order."""
        return tuple(self.main.walk())

    @property
    def candidate_regions(self) -> tuple[Region, ...]:
        """Direct children of the phase region — candidates for tuning."""
        return tuple(self._phase.children)

    def find_region(self, name: str) -> Region:
        return self.main.find(name)


@dataclass(frozen=True)
class BenchmarkInfo:
    """Registry metadata for Table II."""

    name: str
    suite: str
    model: ProgrammingModel
    memory_bound: bool
    description: str = ""
