#!/usr/bin/env python3
"""Model-training scenario: data acquisition, LOOCV and the baseline.

Reproduces the modelling methodology of Section IV on a subset of
benchmarks: collects counter rates and normalized energies across the
DVFS/UFS sweeps, validates the network with leave-one-benchmark-out
cross-validation, and contrasts it with the 10-fold regression baseline
of Chadha et al. [24].

For the full 19-benchmark Figure 5 run, see
``benchmarks/bench_fig5_loocv_mape.py``.
"""

import numpy as np

from repro import TrainingConfig, build_dataset, train_network
from repro.analysis.reporting import render_loocv
from repro.modeling.crossval import kfold_mape, leave_one_out_mape
from repro.modeling.regression import RegressionEnergyModel


BENCHMARKS = ("EP", "CG", "BT", "MG", "FT", "XSBench", "miniFE",
              "Blasbench", "IS", "DC", "Kripke", "CoMD")


def main() -> None:
    print(f"== collecting training data for {len(BENCHMARKS)} benchmarks ==")
    dataset = build_dataset(BENCHMARKS, thread_counts=(12, 20, 24))
    print(f"{dataset.features.shape[0]} samples, "
          f"features: {', '.join(dataset.feature_names)}")

    print("\n== leave-one-benchmark-out cross-validation (network) ==")

    def nn_fit_predict(train_x, train_y, test_x):
        model = train_network(
            train_x, train_y, config=TrainingConfig(epochs=5)
        )
        return model.predict(test_x)

    loocv = leave_one_out_mape(dataset, nn_fit_predict)

    def regression_fit_predict(train_x, train_y, test_x):
        return RegressionEnergyModel().fit(train_x, train_y).predict(test_x)

    regression = kfold_mape(
        dataset.features, dataset.targets, regression_fit_predict, k=10
    )
    print(render_loocv(loocv, regression_mape=regression))

    nn_avg = float(np.mean(list(loocv.values())))
    print(f"\nnetwork LOOCV average: {nn_avg:.2f}% "
          f"(paper: 5.20) — regression 10-fold: {regression:.2f}% (paper: 7.54)")
    print("ordering matches the paper: the network generalises to unseen "
          "benchmarks better than the linear baseline"
          if nn_avg < regression else
          "note: ordering differs from the paper on this reduced subset")


if __name__ == "__main__":
    main()
