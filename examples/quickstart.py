#!/usr/bin/env python3
"""Quickstart: tune one benchmark end to end.

Trains a small energy model, runs the full design-time analysis on
Lulesh (instrumentation -> filtering -> significant-region detection ->
the plugin's tuning steps), then replays the application under the
READEX Runtime Library and reports the savings against the platform
default.

Run time: about a minute (full training sweep).
"""

from repro import (
    Cluster,
    ExecutionSimulator,
    PeriscopeTuningFramework,
    RRL,
    TrainingConfig,
    build_dataset,
    train_network,
)
from repro.workloads import registry


def main() -> None:
    # 1. Train the energy model on the 14 training benchmarks (the five
    #    evaluation benchmarks stay unseen, as in Section V-B).
    print("== training the energy model ==")
    dataset = build_dataset(registry.training_benchmarks())
    model = train_network(
        dataset.features, dataset.targets, config=TrainingConfig(epochs=10)
    )
    print(f"trained on {dataset.features.shape[0]} samples "
          f"({len(dataset.benchmarks)} benchmarks)")

    # 2. Design-time analysis for Lulesh.
    print("\n== design-time analysis: Lulesh ==")
    cluster = Cluster(4)
    outcome = PeriscopeTuningFramework(cluster, model).tune("Lulesh")
    result = outcome.plugin_result
    print(f"significant regions: {len(outcome.readex_config.significant_regions)}")
    print(f"optimal OpenMP threads (phase): {result.phase_threads}")
    print("model-predicted global frequencies: "
          f"{result.global_frequencies[0]:.1f}|{result.global_frequencies[1]:.1f} GHz")
    print(f"phase configuration after verification: {result.phase_configuration}")
    for region, cfg in result.region_configurations.items():
        print(f"  {region:38s} {cfg}")
    print(f"experiments used: {result.experiments_performed} "
          f"(full search space would be {14 * 18 * 4})")

    # 3. Production run under the RRL vs the platform default.
    print("\n== production run (RRL) vs default ==")
    app = registry.build("Lulesh")
    default = ExecutionSimulator(cluster.fresh_node(1)).run(app)
    rrl = RRL(outcome.tuning_model)
    tuned = ExecutionSimulator(cluster.fresh_node(1)).run(
        registry.build("Lulesh"), controller=rrl, instrumented=True,
        instrumentation=outcome.instrumentation,
    )
    job_saving = 1 - tuned.node_energy_j / default.node_energy_j
    cpu_saving = 1 - tuned.cpu_energy_j / default.cpu_energy_j
    slowdown = tuned.time_s / default.time_s - 1
    print(f"job energy saving: {job_saving:+.1%}")
    print(f"CPU energy saving: {cpu_saving:+.1%}")
    print(f"run-time change:   {slowdown:+.1%}")
    print(f"scenario switches: {rrl.stats.frequency_switches}")


if __name__ == "__main__":
    main()
