#!/usr/bin/env python3
"""Static vs dynamic tuning (the Table VI scenario, two benchmarks).

For a compute-bound (Lulesh) and a memory-bound (Mcb) benchmark:

* finds the best static configuration by exhaustive search,
* builds a tuning model via the PTF plugin,
* compares default / static / dynamic runs on job energy, CPU energy
  and time — including the overhead decomposition of Section V-E.
"""

from repro import Cluster, TrainingConfig, build_dataset, train_network
from repro.analysis.reporting import render_savings, render_static_configs
from repro.analysis.savings import compare_static_dynamic
from repro.ptf.framework import PeriscopeTuningFramework
from repro.ptf.static_tuning import exhaustive_static_search
from repro.workloads import registry


def main() -> None:
    cluster = Cluster(4)
    print("== training the energy model ==")
    dataset = build_dataset(registry.training_benchmarks())
    model = train_network(
        dataset.features, dataset.targets, config=TrainingConfig(epochs=10)
    )
    framework = PeriscopeTuningFramework(cluster, model)

    rows = []
    static_configs = {}
    for name in ("Lulesh", "Mcb"):
        print(f"\n== {name}: exhaustive static search (strided grid) ==")
        static = exhaustive_static_search(
            registry.build(name), cluster, stride=2
        )
        static_configs[name] = static.best
        print(f"best static configuration: {static.best} "
              f"({static.energy_saving:+.1%} node energy vs default)")

        print(f"== {name}: design-time analysis ==")
        outcome = framework.tune(name)
        savings = compare_static_dynamic(
            name,
            static.best,
            outcome.tuning_model,
            instrumentation=outcome.instrumentation,
            cluster=cluster,
            runs=3,
        )
        rows.append(savings)

    print("\n" + render_static_configs(static_configs))
    print("\n" + render_savings(rows))
    print("\nshape to check against the paper: dynamic savings exceed static "
          "on both energy metrics; dynamic costs run time; CPU-energy "
          "savings exceed job-energy savings (blade power dilution).")


if __name__ == "__main__":
    main()
