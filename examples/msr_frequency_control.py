#!/usr/bin/env python3
"""Substrate tour: MSR-level frequency control and energy metering.

Shows the hardware layers every higher-level component builds on —
useful when porting the stack to real hardware, where these calls map
1:1 onto ``msr-tools`` / ``x86_adapt`` / RAPL / HDEEM:

* programming ``IA32_PERF_CTL`` and ``MSR_UNCORE_RATIO_LIMIT`` directly,
* the same switches through the x86_adapt knob API and the READEX PCPs,
* reading package/DRAM energy via RAPL (with counter wraparound),
* an HDEEM measurement window around a workload run.
"""

from repro import Cluster, ExecutionSimulator
from repro.hardware.msr import MSR, ghz_of_ratio, ratio_of_ghz
from repro.hardware.msr_tools import rdmsr, wrmsr
from repro.hardware.rapl import RaplDomain
from repro.hardware.x86_adapt import X86AdaptKnob
from repro.readex.pcp import CpuFreqPlugin, UncoreFreqPlugin
from repro.tools.measure_rapl import measure_rapl
from repro.workloads import registry


def main() -> None:
    node = Cluster(2).fresh_node(0)

    print("== raw MSR access (msr-tools level) ==")
    # Set core 0 to 1.8 GHz by writing the target P-state ratio.
    wrmsr(node.msr, 0, MSR.IA32_PERF_CTL, ratio_of_ghz(1.8) << 8)
    status = rdmsr(node.msr, 0, MSR.IA32_PERF_STATUS)
    print(f"core 0 now runs at {ghz_of_ratio((status >> 8) & 0xFF)} GHz")

    print("\n== x86_adapt knob API (what the PCPs use) ==")
    node.x86_adapt.set_setting(0, X86AdaptKnob.INTEL_TARGET_PSTATE, 25)
    node.x86_adapt.set_setting(0, X86AdaptKnob.INTEL_UNCORE_RATIO, 22)
    print(f"core 0: {node.dvfs.get_frequency(0)} GHz, "
          f"socket 0 uncore: {node.ufs.get_frequency(0)} GHz")

    print("\n== READEX parameter control plugins ==")
    CpuFreqPlugin().apply(node, 2.0)
    UncoreFreqPlugin().apply(node, 1.5)
    print("node pinned to calibration point: "
          f"{node.core_freq_ghz}|{node.uncore_freq_ghz} GHz (CF|UCF)")

    print("\n== energy metering around a workload ==")
    node.hdeem.start()
    with measure_rapl(node) as rapl:
        run = ExecutionSimulator(node).run(registry.build("EP"))
    hdeem = node.hdeem.stop()
    pkg = node.rapl.read_node_joules(RaplDomain.PACKAGE)
    dram = node.rapl.read_node_joules(RaplDomain.DRAM)
    print(f"run time:          {run.time_s:8.2f} s")
    print(f"HDEEM node energy: {hdeem.energy_j:8.0f} J "
          f"({hdeem.samples} samples at 1 kSa/s)")
    print(f"RAPL CPU energy:   {rapl.cpu_energy_j:8.0f} J "
          f"(package {pkg:.0f} J + DRAM {dram:.0f} J cumulative)")
    print("blade overhead (node - CPU): "
          f"{hdeem.energy_j - rapl.cpu_energy_j:8.0f} J")


if __name__ == "__main__":
    main()
