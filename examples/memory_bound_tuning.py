#!/usr/bin/env python3
"""Memory-bound workload scenario: tuning Mcbenchmark.

The paper's Figure 7 motivates region-based tuning with a Monte Carlo
burnup benchmark that is the opposite of Lulesh: it wants a *low* core
frequency and a *high* uncore frequency.  This example

1. measures the ground-truth normalized-energy heatmap at the optimal
   thread count (the Figure 7 view),
2. runs the design-time analysis and prints the Table IV analogue,
3. shows the trade-off: dynamic tuning saves energy but costs run time.
"""

from repro import (
    Cluster,
    ExecutionSimulator,
    PeriscopeTuningFramework,
    RRL,
    TrainingConfig,
    build_dataset,
    train_network,
)
from repro.analysis.heatmap import energy_heatmap
from repro.analysis.reporting import render_heatmap, render_region_configs
from repro.workloads import registry


def main() -> None:
    cluster = Cluster(4)

    print("== design-time analysis: Mcbenchmark ==")
    dataset = build_dataset(registry.training_benchmarks())
    model = train_network(
        dataset.features, dataset.targets, config=TrainingConfig(epochs=10)
    )
    outcome = PeriscopeTuningFramework(cluster, model).tune("Mcb")
    result = outcome.plugin_result

    print("\n== Figure 7 analogue: normalized energy heatmap ==")
    heatmap = energy_heatmap(
        "Mcb",
        threads=result.phase_threads,
        cluster=cluster,
        selected=result.global_frequencies,
    )
    print(render_heatmap(heatmap))
    print("\ntrend: memory-bound -> optimum at low CF / high UCF "
          f"(true best {heatmap.best[0]}|{heatmap.best[1]} GHz)")

    print("\n== Table IV analogue: per-region configurations ==")
    print(render_region_configs("Mcb", result.region_configurations))

    print("\n== energy/performance trade-off under the RRL ==")
    default = ExecutionSimulator(cluster.fresh_node(1)).run(registry.build("Mcb"))
    tuned = ExecutionSimulator(cluster.fresh_node(1)).run(
        registry.build("Mcb"),
        controller=RRL(outcome.tuning_model),
        instrumented=True,
        instrumentation=outcome.instrumentation,
    )
    print(f"default: {default.time_s:6.1f} s, {default.node_energy_j:8.0f} J")
    print(f"tuned:   {tuned.time_s:6.1f} s, {tuned.node_energy_j:8.0f} J")
    print(f"energy saving {1 - tuned.node_energy_j / default.node_energy_j:+.1%}, "
          f"time cost {tuned.time_s / default.time_s - 1:+.1%}")


if __name__ == "__main__":
    main()
