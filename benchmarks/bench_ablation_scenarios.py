"""Ablation: scenario grouping (System-Scenario methodology).

DESIGN.md calls out scenario grouping — regions with equal best
configurations share a scenario, so the RRL switches hardware only when
crossing scenario boundaries.  This ablation measures the switch counts
and switching time with the plugin's grouped tuning model versus a
degenerate model where every region is its own scenario with slightly
perturbed configurations (worst case for switching).  Expected shape:
grouping cuts hardware switches substantially at equal energy.
"""

from benchmarks._common import cluster, tuned_outcome
from repro.execution.simulator import ExecutionSimulator, OperatingPoint
from repro.readex.rrl import RRL
from repro.readex.scenario import Scenario
from repro.readex.tuning_model import TuningModel
from repro.util.tables import render_table
from repro.workloads import registry


def _degenerate_tmm(grouped: TuningModel) -> TuningModel:
    """Every region its own scenario with a *distinct* configuration, so
    each region enter is guaranteed to force a hardware switch — the
    worst case scenario grouping protects against."""
    from repro import config as _cfg

    scenarios = []
    regions = sorted(r for s in grouped.scenarios for r in s.regions)
    for i, region in enumerate(regions):
        threads = grouped.configuration_for(region).threads
        scenarios.append(
            Scenario(
                scenario_id=i,
                configuration=OperatingPoint(
                    core_freq_ghz=_cfg.CORE_FREQUENCIES_GHZ[
                        i % len(_cfg.CORE_FREQUENCIES_GHZ)
                    ],
                    uncore_freq_ghz=_cfg.UNCORE_FREQUENCIES_GHZ[
                        (2 * i) % len(_cfg.UNCORE_FREQUENCIES_GHZ)
                    ],
                    threads=threads,
                ),
                regions=(region,),
            )
        )
    return TuningModel(
        app_name=grouped.app_name,
        phase_region=grouped.phase_region,
        scenarios=tuple(scenarios),
        default=grouped.default,
    )


def _run(name: str, tmm: TuningModel):
    rrl = RRL(tmm)
    result = ExecutionSimulator(cluster().fresh_node(2)).run(
        registry.build(name), controller=rrl, instrumented=True
    )
    return rrl.stats, result


def _ablate():
    rows = []
    for name in ("Lulesh", "Mcb"):
        grouped_tmm = tuned_outcome(name).tuning_model
        grouped_stats, grouped_run = _run(name, grouped_tmm)
        degenerate_stats, degenerate_run = _run(name, _degenerate_tmm(grouped_tmm))
        rows.append(
            (
                name,
                len(grouped_tmm.scenarios),
                grouped_stats.frequency_switches,
                degenerate_stats.frequency_switches,
                grouped_run.switching_time_s,
                degenerate_run.switching_time_s,
            )
        )
    return rows


def test_ablation_scenario_grouping(benchmark):
    rows = benchmark.pedantic(_ablate, rounds=1, iterations=1)
    print()
    print(
        render_table(
            [
                "Benchmark",
                "scenarios",
                "switches (grouped)",
                "switches (per-region)",
                "switch time grouped (s)",
                "switch time per-region (s)",
            ],
            [[n, s, g, d, f"{gt:.6f}", f"{dt:.6f}"] for n, s, g, d, gt, dt in rows],
            title="Ablation: scenario grouping vs per-region configurations",
        )
    )
    for name, scenarios, grouped, degenerate, gt, dt in rows:
        assert grouped < degenerate, name
        assert gt < dt, name
