"""Section V-C: tuning time — model-based plugin vs exhaustive search,
plus the model-evaluation engine benchmark (pointwise vs batched).

Paper: for Mcbenchmark with n regions and a k x l x m search space, the
exhaustive approach of Sourouri et al. [7] costs n*k*l*m*t while the
model-based plugin costs (k + 1 + 9)*t, or (k + 1 + 9) phase iterations
when the main loop is progressive.  Expected shape: orders-of-magnitude
reduction, plus the measured plugin run confirming the experiment count.

The engine benchmark measures the *model-evaluation* side of tuning:
predicting the energy-optimal static configuration for every
(benchmark, threads) series over the full core x uncore grid, through
both engines.  Selections are asserted identical; the JSON report (the
CI perf gate compares its ``speedup`` against
``benchmarks/baselines/tuning-time.json``) looks like::

    python benchmarks/bench_tuning_time.py --engine batched \
        --json tuning-time.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

if __package__ in (None, ""):  # script execution: make `benchmarks` importable
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks._common import cluster, deployed_model, full_dataset, tuned_outcome
from repro.analysis.reporting import render_tuning_time
from repro.analysis.tuning_time import tuning_time_comparison
from repro.modeling.batched import ENGINES, frequency_grid
from repro.ptf.static_tuning import select_static_configurations

#: Timing repetitions per engine (each covers every registry series).
DEFAULT_REPEATS = 5


def measure_model_engines(repeats: int = DEFAULT_REPEATS) -> dict:
    """Time static-configuration selection through both engines.

    One "round" predicts the full frequency grid for every
    (benchmark, threads) series of the Figure 5 dataset and selects the
    energy-optimal static configuration per series.
    """
    dataset = full_dataset()
    model = deployed_model()
    series = dataset.counter_rates

    def run_once(engine: str):
        return select_static_configurations(model, series, engine=engine)

    timings: dict[str, float] = {}
    selections: dict[str, dict] = {}
    for engine in ENGINES:
        selections[engine] = run_once(engine)  # warm-up (registry, caches)
        start = time.perf_counter()
        for _ in range(repeats):
            selections[engine] = run_once(engine)
        timings[engine] = (time.perf_counter() - start) / repeats

    identical = selections["pointwise"] == selections["batched"]
    points, _ = frequency_grid()
    return {
        "series": len(series),
        "grid_points": len(points),
        "predictions_per_round": len(series) * len(points),
        "repeats": repeats,
        "pointwise_ms": timings["pointwise"] * 1e3,
        "batched_ms": timings["batched"] * 1e3,
        "speedup": timings["pointwise"] / timings["batched"],
        "selections_identical": identical,
    }


def run_benchmark(
    engine: str = "batched", repeats: int = DEFAULT_REPEATS
) -> dict:
    """The full report: engine timings + the Section V-C estimate."""
    if engine not in ENGINES:
        raise SystemExit(f"--engine must be one of {ENGINES}")
    engines = measure_model_engines(repeats=repeats)
    comparison = tuning_time_comparison("Mcb", cluster=cluster(), num_regions=5)
    estimate = comparison.estimate
    return {
        "benchmark": "tuning_time",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "engine": engine,
        "model_evaluation": engines,
        "speedup": engines["speedup"],
        "section_v_c": {
            "exhaustive_runs": estimate.exhaustive_runs,
            "model_based_experiments": estimate.model_based_experiments,
            "speedup_over_exhaustive": comparison.speedup_over_exhaustive,
        },
    }


def render(report: dict) -> str:
    e = report["model_evaluation"]
    v = report["section_v_c"]
    return "\n".join(
        [
            f"model evaluation over {e['series']} series x "
            f"{e['grid_points']} grid points "
            f"({e['predictions_per_round']} predictions/round):",
            f"  pointwise {e['pointwise_ms']:8.2f} ms/round",
            f"  batched   {e['batched_ms']:8.2f} ms/round   "
            f"({e['speedup']:.1f}x, selections identical: "
            f"{e['selections_identical']})",
            f"section V-C: exhaustive {v['exhaustive_runs']} runs vs "
            f"{v['model_based_experiments']} model-based experiments "
            f"({v['speedup_over_exhaustive']:.0f}x)",
        ]
    )


# ---------------------------------------------------------------------------
# pytest entry points (run with the bench harness)
# ---------------------------------------------------------------------------

def _compare():
    cmp = tuning_time_comparison("Mcb", cluster=cluster(), num_regions=5)
    outcome = tuned_outcome("Mcb")
    return cmp, outcome.plugin_result


def test_tuning_time_comparison(benchmark):
    cmp, plugin = benchmark.pedantic(_compare, rounds=1, iterations=1)
    print()
    print(render_tuning_time(cmp))
    print(f"\nmeasured plugin: {plugin.experiments_performed} experiments in "
          f"{plugin.application_runs} application runs, "
          f"{plugin.tuning_time_s:.0f} s simulated tuning time")
    estimate = cmp.estimate
    assert estimate.exhaustive_runs == 5 * 4 * 14 * 18  # n*k*l*m
    assert estimate.model_based_experiments == 4 + 1 + 9  # k + 1 + 9
    assert cmp.speedup_over_exhaustive > 300
    # The measured plugin respects the k + 9 experiment budget.
    assert plugin.experiments_performed <= 13
    # Phase-iteration exploitation beats whole-run experiments.
    assert cmp.model_based_phase_time_s < cmp.model_based_run_time_s
    # And the actually-measured tuning time is far below exhaustive.
    assert plugin.tuning_time_s < estimate.exhaustive_time_s / 100


def test_model_evaluation_engines(benchmark):
    report = benchmark.pedantic(
        lambda: measure_model_engines(repeats=3), rounds=1, iterations=1
    )
    print()
    print(f"pointwise {report['pointwise_ms']:.2f} ms, "
          f"batched {report['batched_ms']:.2f} ms "
          f"({report['speedup']:.1f}x)")
    assert report["selections_identical"]
    # Smoke-level bound only; the committed baseline holds the real
    # number and the CI perf gate compares against it.
    assert report["speedup"] > 2


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--engine", choices=ENGINES, default="batched",
        help="engine whose selections are published (both are always "
             "measured and asserted identical)",
    )
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS)
    parser.add_argument("--json", type=Path, default=None,
                        help="write the full report as JSON")
    args = parser.parse_args(argv)
    report = run_benchmark(args.engine, repeats=args.repeats)
    print(render(report))
    if not report["model_evaluation"]["selections_identical"]:
        print("ERROR: engines disagree on selected configurations")
        return 1
    if args.json:
        args.json.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nwrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
