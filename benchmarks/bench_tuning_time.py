"""Section V-C: tuning time — model-based plugin vs exhaustive search.

Paper: for Mcbenchmark with n regions and a k x l x m search space, the
exhaustive approach of Sourouri et al. [7] costs n*k*l*m*t while the
model-based plugin costs (k + 1 + 9)*t, or (k + 1 + 9) phase iterations
when the main loop is progressive.  Expected shape: orders-of-magnitude
reduction, plus the measured plugin run confirming the experiment count.
"""

from benchmarks._common import cluster, tuned_outcome
from repro.analysis.reporting import render_tuning_time
from repro.analysis.tuning_time import tuning_time_comparison


def _compare():
    cmp = tuning_time_comparison("Mcb", cluster=cluster(), num_regions=5)
    outcome = tuned_outcome("Mcb")
    return cmp, outcome.plugin_result


def test_tuning_time_comparison(benchmark):
    cmp, plugin = benchmark.pedantic(_compare, rounds=1, iterations=1)
    print()
    print(render_tuning_time(cmp))
    print(f"\nmeasured plugin: {plugin.experiments_performed} experiments in "
          f"{plugin.application_runs} application runs, "
          f"{plugin.tuning_time_s:.0f} s simulated tuning time")
    estimate = cmp.estimate
    assert estimate.exhaustive_runs == 5 * 4 * 14 * 18  # n*k*l*m
    assert estimate.model_based_experiments == 4 + 1 + 9  # k + 1 + 9
    assert cmp.speedup_over_exhaustive > 300
    # The measured plugin respects the k + 9 experiment budget.
    assert plugin.experiments_performed <= 13
    # Phase-iteration exploitation beats whole-run experiments.
    assert cmp.model_based_phase_time_s < cmp.model_based_run_time_s
    # And the actually-measured tuning time is far below exhaustive.
    assert plugin.tuning_time_s < estimate.exhaustive_time_s / 100
