"""Figure 6: Lulesh normalized energy over the CF x UCF grid, 24 threads.

Paper: trend toward high core frequency and low uncore frequency
(compute bound); true best 2.4|1.7 GHz, plugin selection 2.5|2.1 GHz,
many configurations within 2% of the optimum.  Expected shape: best in
the high-CF/low-UCF corner region, plugin pick close to (within a few
percent of) the optimum.

Standalone, the module benchmarks the full-grid measurement through
both heatmap engines (``--engine {loop,sweep}``), asserts their
bit-equality and reports the sweep-replay speedup::

    python benchmarks/bench_fig6_lulesh_heatmap.py --engine sweep \
        --apps Lulesh Mcb --json grid-sweep.json

The two-figure JSON feeds the CI perf-regression gate
(``benchmarks/baselines/grid-sweep.json``).
"""

from __future__ import annotations

import sys
from pathlib import Path

if __package__ in (None, ""):  # script execution: make `benchmarks` importable
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks._common import cluster, tuned_outcome
from repro.analysis.heatmap import energy_heatmap
from repro.analysis.reporting import render_heatmap


def _heatmap():
    outcome = tuned_outcome("Lulesh")
    result = outcome.plugin_result
    return energy_heatmap(
        "Lulesh",
        threads=result.phase_threads,
        cluster=cluster(),
        selected=(
            result.phase_configuration.core_freq_ghz,
            result.phase_configuration.uncore_freq_ghz,
        ),
    )


def test_fig6_lulesh_heatmap(benchmark):
    heatmap = benchmark.pedantic(_heatmap, rounds=1, iterations=1)
    print()
    print(render_heatmap(heatmap))
    best_cf, best_ucf = heatmap.best
    print("\npaper: best 2.4|1.7, plugin 2.5|2.1; "
          f"ours: best {best_cf}|{best_ucf}, plugin {heatmap.selected}")
    # Compute-bound trend: high CF, low-to-mid UCF.
    assert best_cf >= 2.2
    assert best_ucf <= 2.0
    # The plugin's verified pick stays within a few percent of the optimum
    # (the paper's pick 2.5|2.1 was itself off the true best 2.4|1.7).
    sel_value = heatmap.value_at(*heatmap.selected)
    assert sel_value <= heatmap.best_value * 1.05
    # A sizeable near-optimal plateau exists (the pink cells of Fig. 6).
    assert len(heatmap.plateau()) >= 5


def main(argv=None) -> int:
    from benchmarks._grid_sweep import main as grid_sweep_main

    return grid_sweep_main(
        argv, default_apps=("Lulesh",), description=__doc__.splitlines()[0]
    )


if __name__ == "__main__":
    sys.exit(main())
