"""Figure 6: Lulesh normalized energy over the CF x UCF grid, 24 threads.

Paper: trend toward high core frequency and low uncore frequency
(compute bound); true best 2.4|1.7 GHz, plugin selection 2.5|2.1 GHz,
many configurations within 2% of the optimum.  Expected shape: best in
the high-CF/low-UCF corner region, plugin pick close to (within a few
percent of) the optimum.
"""

from benchmarks._common import cluster, tuned_outcome
from repro.analysis.heatmap import energy_heatmap
from repro.analysis.reporting import render_heatmap


def _heatmap():
    outcome = tuned_outcome("Lulesh")
    result = outcome.plugin_result
    return energy_heatmap(
        "Lulesh",
        threads=result.phase_threads,
        cluster=cluster(),
        selected=(
            result.phase_configuration.core_freq_ghz,
            result.phase_configuration.uncore_freq_ghz,
        ),
    )


def test_fig6_lulesh_heatmap(benchmark):
    heatmap = benchmark.pedantic(_heatmap, rounds=1, iterations=1)
    print()
    print(render_heatmap(heatmap))
    best_cf, best_ucf = heatmap.best
    print("\npaper: best 2.4|1.7, plugin 2.5|2.1; "
          f"ours: best {best_cf}|{best_ucf}, plugin {heatmap.selected}")
    # Compute-bound trend: high CF, low-to-mid UCF.
    assert best_cf >= 2.2
    assert best_ucf <= 2.0
    # The plugin's verified pick stays within a few percent of the optimum
    # (the paper's pick 2.5|2.1 was itself off the true best 2.4|1.7).
    sel_value = heatmap.value_at(*heatmap.selected)
    assert sel_value <= heatmap.best_value * 1.05
    # A sizeable near-optimal plateau exists (the pink cells of Fig. 6).
    assert len(heatmap.plateau()) >= 5
