"""Table II: the benchmark roster used for validation.

Paper: 19 benchmarks across NPB-3.3, CORAL, Mantevo, LLCBench and the
real-world application BEM4I; NPB (except the MZ variants) and miniFE
are OpenMP, Kripke and CoMD are MPI-only, the rest are hybrid.
"""

from repro.analysis.reporting import render_roster
from repro.workloads import registry
from repro.workloads.application import ProgrammingModel


def _roster():
    return registry.roster()


def test_table2_benchmark_roster(benchmark):
    roster = benchmark.pedantic(_roster, rounds=1, iterations=1)
    print()
    print(render_roster(roster))
    assert len(roster) == 19
    by_name = {info.name: info for info in roster}
    # Programming models as stated in Section V-B.
    for name in ("CG", "DC", "EP", "FT", "IS", "MG", "BT", "miniFE"):
        assert by_name[name].model is ProgrammingModel.OPENMP
    for name in ("Kripke", "CoMD"):
        assert by_name[name].model is ProgrammingModel.MPI
    for name in ("BT-MZ", "SP-MZ", "Amg2013", "Lulesh", "XSBench", "Mcb",
                 "miniMD", "Blasbench", "BEM4I"):
        assert by_name[name].model is ProgrammingModel.HYBRID
