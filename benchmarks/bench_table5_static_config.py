"""Table V: optimal static configuration per evaluation benchmark.

Paper: Lulesh 24T 2.40|1.70, Amg2013 16T 2.50|2.30, miniMD 24T
2.50|1.50, BEM4I 24T 2.30|1.90, Mcbenchmark 20T 1.60|2.50.  Expected
shape: the compute-bound four at high CF / low-to-mid UCF with 24 (16
for Amg2013) threads; Mcb at low CF / high UCF with 20 threads.
"""

from benchmarks._common import static_result
from repro.analysis.reporting import render_static_configs
from repro.workloads import registry

PAPER_TABLE5 = {
    "Lulesh": (24, 2.40, 1.70),
    "Amg2013": (16, 2.50, 2.30),
    "miniMD": (24, 2.50, 1.50),
    "BEM4I": (24, 2.30, 1.90),
    "Mcb": (20, 1.60, 2.50),
}


def _sweep():
    return {name: static_result(name) for name in registry.TEST_BENCHMARKS}


def test_table5_static_configurations(benchmark):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print()
    print(render_static_configs({n: r.best for n, r in results.items()}))
    print("\npaper (threads, CF, UCF):")
    for name, row in PAPER_TABLE5.items():
        best = results[name].best
        print(f"  {name:10s} paper {row}  ours "
              f"({best.threads}, {best.core_freq_ghz}, {best.uncore_freq_ghz})"
              f"  saving {results[name].energy_saving:+.1%}")
    for name, (threads, cf, ucf) in PAPER_TABLE5.items():
        best = results[name].best
        # Within one tuning step of the paper's configuration per knob.
        assert abs(best.threads - threads) <= 4, name
        assert abs(best.core_freq_ghz - cf) <= 0.25, name
        assert abs(best.uncore_freq_ghz - ucf) <= 0.25, name
        assert results[name].energy_saving > 0.0, name
