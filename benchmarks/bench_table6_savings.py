"""Table VI: static and dynamic tuning results for the five benchmarks.

Paper (averages over the five benchmarks): static tuning saves 3.5% job
energy / 7.8% CPU energy; dynamic tuning saves 7.53% / 16.1% but costs
run time (-4% .. -14.5%); the combined DVFS/UFS/Score-P overhead beyond
the configuration effect is a few percent.  Expected shape: dynamic
energy savings exceed static on both metrics, CPU savings exceed job
savings, dynamic time savings negative.
"""

import numpy as np

from benchmarks._common import cluster, static_result, tuned_outcome
from repro.analysis.reporting import render_savings
from repro.analysis.savings import compare_static_dynamic
from repro.workloads import registry


def _compare():
    rows = []
    for name in registry.TEST_BENCHMARKS:
        outcome = tuned_outcome(name)
        rows.append(
            compare_static_dynamic(
                name,
                static_result(name).best,
                outcome.tuning_model,
                instrumentation=outcome.instrumentation,
                cluster=cluster(),
                runs=5,
            )
        )
    return rows


def test_table6_static_vs_dynamic(benchmark):
    rows = benchmark.pedantic(_compare, rounds=1, iterations=1)
    print()
    print(render_savings(rows))
    static_job = float(np.mean([s.static_job_energy_saving for s in rows]))
    static_cpu = float(np.mean([s.static_cpu_energy_saving for s in rows]))
    dyn_job = float(np.mean([s.dynamic_job_energy_saving for s in rows]))
    dyn_cpu = float(np.mean([s.dynamic_cpu_energy_saving for s in rows]))
    print("\npaper averages: static 3.5%/7.8%, dynamic 7.53%/16.1% "
          "(job/CPU energy)")
    print(f"our averages:   static {static_job:.1%}/{static_cpu:.1%}, "
          f"dynamic {dyn_job:.1%}/{dyn_cpu:.1%}")
    # Both strategies save energy on average.
    assert static_job > 0 and static_cpu > 0
    assert dyn_job > 0 and dyn_cpu > 0
    # Dynamic beats static on CPU energy (the paper's headline claim).
    assert dyn_cpu > static_cpu
    # CPU-energy savings exceed job-energy savings (blade-power dilution).
    assert static_cpu > static_job
    assert dyn_cpu > dyn_job
    for s in rows:
        # Dynamic tuning costs run time on every benchmark.
        assert s.dynamic_time_saving < 0, s.benchmark
        # The overhead component (switching + Score-P) is a time cost.
        assert s.overhead < 0.02, s.benchmark
