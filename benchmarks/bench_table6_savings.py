"""Table VI: static and dynamic tuning results for the five benchmarks.

Paper (averages over the five benchmarks): static tuning saves 3.5% job
energy / 7.8% CPU energy; dynamic tuning saves 7.53% / 16.1% but costs
run time (-4% .. -14.5%); the combined DVFS/UFS/Score-P overhead beyond
the configuration effect is a few percent.  Expected shape: dynamic
energy savings exceed static on both metrics, CPU savings exceed job
savings, dynamic time savings negative.

The pytest entry computes the full paper table through the harness
campaign engine (controlled runs ride the controlled-replay fast path
and the on-disk result store).  Standalone, the module benchmarks the
*controlled-run sweep* — the four Table VI run variants under canned,
deterministic tuning models — through both execution engines, asserts
their bit-equality and reports the replay speedup::

    python benchmarks/bench_table6_savings.py --engine replay \
        --apps EP FT Lulesh --runs 3 --json dynamic-replay.json

The JSON feeds the CI perf-regression gate
(``benchmarks/baselines/dynamic-replay.json``).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

if __package__ in (None, ""):  # script execution: make `benchmarks` importable
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro.analysis.savings import compare_static_dynamic
from repro.api import ExecutionOptions
from repro.execution.simulator import OperatingPoint
from repro.readex.tuning_model import TuningModel
from repro.workloads import registry

#: Default standalone sweep: the paper's five Table VI benchmarks.
DEFAULT_APPS = ("Lulesh", "Amg2013", "miniMD", "BEM4I", "Mcb")
DEFAULT_RUNS = 3


def canned_tuning_model(app_name: str) -> TuningModel:
    """A deterministic stand-in for the DTA's tuning model.

    Alternates two scenario configurations over the phase's first four
    children plus a phase scenario — the shape the design-time analysis
    produces — so the sweep exercises real switching without the
    expensive model-training pipeline.
    """
    app = registry.build(app_name)
    best = {"phase": OperatingPoint(2.5, 2.1, 24)}
    for i, region in enumerate(app.phase.children[:4]):
        best[region.name] = OperatingPoint(2.4 if i % 2 else 2.5, 2.0, 24)
    return TuningModel.from_best_configs(app_name, "phase", best)


CANNED_STATIC = OperatingPoint(2.4, 2.0, 24)


def measure_app(
    app_name: str, runs: int = DEFAULT_RUNS, primary: str = "replay"
) -> dict:
    """Time the four-variant controlled-run sweep through both engines.

    ``primary`` is warmed up and timed first (the fairest position for
    the engine under scrutiny); both engines always run and their rows
    must agree to the bit.
    """
    model = canned_tuning_model(app_name)

    def sweep(engine: str):
        return compare_static_dynamic(
            app_name, CANNED_STATIC, model, runs=runs,
            options=ExecutionOptions(engine=engine),
        )

    order = (primary, "recursive" if primary == "replay" else "replay")
    sweep(primary)  # warm-up: registry, memoised timings, schedule cache
    timings, rows = {}, {}
    for engine in order:
        start = time.perf_counter()
        rows[engine] = sweep(engine)
        timings[engine] = time.perf_counter() - start
    return {
        "app": app_name,
        "runs_per_variant": runs,
        "replay_ms": timings["replay"] * 1e3,
        "recursive_ms": timings["recursive"] * 1e3,
        "speedup": timings["recursive"] / timings["replay"],
        "engines_identical": rows["replay"] == rows["recursive"],
        "dynamic_cpu_energy_saving": rows["replay"].dynamic_cpu_energy_saving,
        "dynamic_job_energy_saving": rows["replay"].dynamic_job_energy_saving,
    }


def run_benchmark(
    apps: tuple[str, ...] = DEFAULT_APPS,
    runs: int = DEFAULT_RUNS,
    primary: str = "replay",
) -> dict:
    results = [measure_app(name, runs, primary) for name in apps]
    replay_total = sum(r["replay_ms"] for r in results)
    recursive_total = sum(r["recursive_ms"] for r in results)
    return {
        "benchmark": "table6_savings",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "primary_engine": primary,
        "results": results,
        "aggregate": {
            "apps": len(results),
            "replay_ms": replay_total,
            "recursive_ms": recursive_total,
            "speedup": recursive_total / replay_total,
            "engines_identical": all(r["engines_identical"] for r in results),
        },
    }


def render(report: dict) -> str:
    lines = [
        f"{'app':<10} {'recursive':>11} {'replay':>10} {'speedup':>8} "
        f"{'identical':>10}",
    ]
    for r in report["results"]:
        lines.append(
            f"{r['app']:<10} {r['recursive_ms']:>9.1f}ms {r['replay_ms']:>8.1f}ms "
            f"{r['speedup']:>7.1f}x {str(r['engines_identical']):>10}"
        )
    a = report["aggregate"]
    lines.append(
        f"{'aggregate':<10} {a['recursive_ms']:>9.1f}ms {a['replay_ms']:>8.1f}ms "
        f"{a['speedup']:>7.1f}x {str(a['engines_identical']):>10}"
    )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# pytest entry points (run with the bench harness)
# ---------------------------------------------------------------------------

def _compare():
    from benchmarks._common import campaign_engine, cluster, static_result, tuned_outcome

    from repro.analysis.savings import SavingsCase, compare_static_dynamic_many

    cases = []
    for name in registry.TEST_BENCHMARKS:
        outcome = tuned_outcome(name)
        cases.append(
            SavingsCase(
                benchmark=name,
                static_config=static_result(name).best,
                tuning_model=outcome.tuning_model,
                instrumentation=outcome.instrumentation,
            )
        )
    # One fleet campaign run prices every benchmark's four variants.
    return compare_static_dynamic_many(
        cases,
        cluster=cluster(),
        runs=5,
        options=ExecutionOptions(campaign=campaign_engine()),
    )


def test_table6_static_vs_dynamic(benchmark):
    from repro.analysis.reporting import render_savings

    rows = benchmark.pedantic(_compare, rounds=1, iterations=1)
    print()
    print(render_savings(rows))
    static_job = float(np.mean([s.static_job_energy_saving for s in rows]))
    static_cpu = float(np.mean([s.static_cpu_energy_saving for s in rows]))
    dyn_job = float(np.mean([s.dynamic_job_energy_saving for s in rows]))
    dyn_cpu = float(np.mean([s.dynamic_cpu_energy_saving for s in rows]))
    print("\npaper averages: static 3.5%/7.8%, dynamic 7.53%/16.1% "
          "(job/CPU energy)")
    print(f"our averages:   static {static_job:.1%}/{static_cpu:.1%}, "
          f"dynamic {dyn_job:.1%}/{dyn_cpu:.1%}")
    # Both strategies save energy on average.
    assert static_job > 0 and static_cpu > 0
    assert dyn_job > 0 and dyn_cpu > 0
    # Dynamic beats static on CPU energy (the paper's headline claim).
    assert dyn_cpu > static_cpu
    # CPU-energy savings exceed job-energy savings (blade-power dilution).
    assert static_cpu > static_job
    assert dyn_cpu > dyn_job
    for s in rows:
        # Dynamic tuning costs run time on every benchmark.
        assert s.dynamic_time_saving < 0, s.benchmark
        # The overhead component (switching + Score-P) is a time cost.
        assert s.overhead < 0.02, s.benchmark


def test_table6_engine_speedup(benchmark):
    """Smoke: the controlled-run sweep replays faster and bit-identical.

    The committed numbers live in ``baselines/dynamic-replay.json``; CI
    boxes are too noisy for the full measured factor, so this only
    guards the floor and the equality flag.
    """
    report = benchmark.pedantic(
        lambda: run_benchmark(("Lulesh", "Mcb"), runs=2), rounds=1, iterations=1
    )
    print()
    print(render(report))
    assert report["aggregate"]["engines_identical"]
    assert report["aggregate"]["speedup"] > 3


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--engine", choices=("recursive", "replay"), default="replay",
        help="engine warmed up and timed first; both engines always run "
             "and their sweeps must agree to the bit",
    )
    parser.add_argument("--apps", nargs="*", default=None,
                        help=f"benchmark names (default: {' '.join(DEFAULT_APPS)})")
    parser.add_argument("--runs", type=int, default=DEFAULT_RUNS,
                        help="repetitions averaged per run variant")
    parser.add_argument("--json", type=Path, default=None,
                        help="write the full report as JSON")
    args = parser.parse_args(argv)
    apps = tuple(args.apps) if args.apps else DEFAULT_APPS
    report = run_benchmark(apps, args.runs, primary=args.engine)
    print(render(report))
    aggregate = report["aggregate"]
    if not aggregate["engines_identical"]:
        print("\nENGINE MISMATCH: replay and recursive sweeps disagree")
        return 1
    print(f"\ncontrolled-run sweep speedup: {aggregate['speedup']:.1f}x "
          f"(primary engine: {args.engine})")
    if args.json:
        args.json.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
