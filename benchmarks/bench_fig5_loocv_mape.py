"""Figure 5: LOOCV mean absolute percentage error per benchmark.

Paper: the network, trained with leave-one-benchmark-out CV (5 epochs),
reaches MAPE 2.81 (Lulesh) .. 9.35 (miniMD), average 5.20 — beating the
regression baseline's 7.54 (10-fold CV with random indexing).  Expected
shape: single-digit MAPE per benchmark, network average below the
regression baseline.

The study runs through the batched model-evaluation engine: folds train
as parallel campaign jobs, trained weights are recalled from the
harness result store on warm sessions, and held-out benchmarks are
predicted in stacked forward passes — bit-identical to the serial
pointwise loop, which stays selectable (and timed) via::

    python benchmarks/bench_fig5_loocv_mape.py --engine pointwise \
        --json loocv-mape.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

if __package__ in (None, ""):  # script execution: make `benchmarks` importable
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks._common import LOOCV_EPOCHS, campaign_engine, full_dataset
from repro.analysis.reporting import render_loocv
from repro.modeling.batched import ENGINES
from repro.modeling.crossval import kfold_mape, network_loocv_mape
from repro.modeling.regression import RegressionEnergyModel
from repro.modeling.training import TrainingConfig


def _loocv(engine: str = "batched"):
    ds = full_dataset()
    results = network_loocv_mape(
        ds,
        config=TrainingConfig(epochs=LOOCV_EPOCHS),
        engine=engine,
        campaign=campaign_engine() if engine == "batched" else None,
    )

    def regression_fit_predict(train_x, train_y, test_x):
        return RegressionEnergyModel().fit(train_x, train_y).predict(test_x)

    regression = kfold_mape(
        ds.features, ds.targets, regression_fit_predict, k=10
    )
    return results, regression


def run_benchmark(engine: str = "batched") -> dict:
    """Measure both engines end to end and report the speedup.

    The pointwise number is serial fold training; the batched number
    includes parallel fold dispatch and (on warm stores) cached-weight
    recall.  MAPE values are asserted identical.
    """
    if engine not in ENGINES:
        raise SystemExit(f"--engine must be one of {ENGINES}")
    ds = full_dataset()
    config = TrainingConfig(epochs=LOOCV_EPOCHS)
    timings: dict[str, float] = {}
    mapes: dict[str, dict[str, float]] = {}
    for name in ENGINES:
        start = time.perf_counter()
        mapes[name] = network_loocv_mape(
            ds,
            config=config,
            engine=name,
            campaign=campaign_engine() if name == "batched" else None,
        )
        timings[name] = time.perf_counter() - start
    identical = mapes["pointwise"] == mapes["batched"]
    values = list(mapes[engine].values())
    return {
        "benchmark": "loocv_mape",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "engine": engine,
        "benchmarks": len(values),
        "pointwise_s": timings["pointwise"],
        "batched_s": timings["batched"],
        "speedup": timings["pointwise"] / timings["batched"],
        "mape_identical": identical,
        "mape_avg": float(np.mean(values)),
        "mape": {k: float(v) for k, v in mapes[engine].items()},
    }


# ---------------------------------------------------------------------------
# pytest entry point (runs with the bench harness)
# ---------------------------------------------------------------------------

def test_fig5_loocv_mape(benchmark):
    results, regression = benchmark.pedantic(_loocv, rounds=1, iterations=1)
    print()
    print(render_loocv(results, regression_mape=regression))
    values = list(results.values())
    average = float(np.mean(values))
    print("\npaper: avg 5.20 (min 2.81 Lulesh, max 9.35 miniMD); "
          "regression baseline 7.54")
    print(f"ours:  avg {average:.2f} (min {min(values):.2f}, "
          f"max {max(values):.2f}); regression {regression:.2f}")
    assert len(results) == 19
    assert average < 10.0              # single-digit accuracy on average
    assert max(values) < 20.0          # no pathological benchmark
    assert average < regression        # network beats the regression baseline


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--engine", choices=ENGINES, default="batched",
        help="engine whose MAPE values are published (both are always "
             "measured and asserted identical)",
    )
    parser.add_argument("--json", type=Path, default=None,
                        help="write the full report as JSON")
    args = parser.parse_args(argv)
    report = run_benchmark(args.engine)
    values = report["mape"]
    print(f"LOOCV over {report['benchmarks']} benchmarks: "
          f"avg MAPE {report['mape_avg']:.2f}")
    print(f"pointwise {report['pointwise_s']:.2f} s, "
          f"batched {report['batched_s']:.2f} s "
          f"({report['speedup']:.1f}x, identical: {report['mape_identical']})")
    for bench in sorted(values, key=values.get):
        print(f"  {bench:<12} {values[bench]:6.2f}")
    if not report["mape_identical"]:
        print("ERROR: engines disagree on LOOCV MAPE")
        return 1
    if args.json:
        args.json.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nwrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
