"""Figure 5: LOOCV mean absolute percentage error per benchmark.

Paper: the network, trained with leave-one-benchmark-out CV (5 epochs),
reaches MAPE 2.81 (Lulesh) .. 9.35 (miniMD), average 5.20 — beating the
regression baseline's 7.54 (10-fold CV with random indexing).  Expected
shape: single-digit MAPE per benchmark, network average below the
regression baseline.
"""

import numpy as np

from benchmarks._common import LOOCV_EPOCHS, full_dataset
from repro.analysis.reporting import render_loocv
from repro.modeling.crossval import kfold_mape, leave_one_out_mape
from repro.modeling.regression import RegressionEnergyModel
from repro.modeling.training import TrainingConfig, train_network


def _loocv():
    ds = full_dataset()

    def nn_fit_predict(train_x, train_y, test_x):
        model = train_network(
            train_x, train_y, config=TrainingConfig(epochs=LOOCV_EPOCHS)
        )
        return model.predict(test_x)

    results = leave_one_out_mape(ds, nn_fit_predict)

    def regression_fit_predict(train_x, train_y, test_x):
        return RegressionEnergyModel().fit(train_x, train_y).predict(test_x)

    regression = kfold_mape(
        ds.features, ds.targets, regression_fit_predict, k=10
    )
    return results, regression


def test_fig5_loocv_mape(benchmark):
    results, regression = benchmark.pedantic(_loocv, rounds=1, iterations=1)
    print()
    print(render_loocv(results, regression_mape=regression))
    values = list(results.values())
    average = float(np.mean(values))
    print(f"\npaper: avg 5.20 (min 2.81 Lulesh, max 9.35 miniMD); "
          f"regression baseline 7.54")
    print(f"ours:  avg {average:.2f} (min {min(values):.2f}, "
          f"max {max(values):.2f}); regression {regression:.2f}")
    assert len(results) == 19
    assert average < 10.0              # single-digit accuracy on average
    assert max(values) < 20.0          # no pathological benchmark
    assert average < regression        # network beats the regression baseline
