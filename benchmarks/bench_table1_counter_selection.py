"""Table I: optimal PAPI counter selection with VIF.

Paper: seven counters selected from the 56 presets by the stepwise
algorithm of Chadha et al. [24] with normalized node energy as the
dependent variable; mean VIF well below 10 (limited multicollinearity).
Expected shape: a compact selection (<= 7 counters) dominated by memory/
branch behaviour events, mean VIF < 10, and substantial explained
variance on top of the frequency covariates.
"""

import numpy as np

from benchmarks._common import cluster, full_dataset
from repro.analysis.reporting import render_counter_selection
from repro.counters.papi import PAPI_PRESETS, TABLE1_COUNTERS, preset
from repro.modeling.dataset import measure_counter_rates
from repro.modeling.selection import select_counters
from repro.workloads import registry

#: Cycle-family presets scale with run time/frequency rather than workload
#: character; the selection uses the workload-characterising presets plus
#: RES_STL (as the paper's Table I does).
_CANDIDATES = tuple(
    name
    for name, counter in PAPI_PRESETS.items()
    if counter.category.value != "cycle" or name == "PAPI_RES_STL"
)


def _select():
    ds = full_dataset()
    # Per-benchmark 56-counter rates at the calibration configuration.
    rate_rows = {}
    for bench in registry.benchmark_names():
        rates = measure_counter_rates(
            registry.build(bench), cluster(), counters=_CANDIDATES
        )
        rate_rows[bench] = np.array([rates[c] for c in _CANDIDATES])
    # Align candidate rates with every energy sample of the dataset.
    features = np.vstack([rate_rows[g] for g in ds.groups])
    freqs = ds.features[:, -2:]
    return select_counters(
        features, list(_CANDIDATES), freqs, ds.targets, max_counters=7
    )


def test_table1_counter_selection(benchmark):
    selection = benchmark.pedantic(_select, rounds=1, iterations=1)
    print()
    print(render_counter_selection(selection))
    overlap = set(selection.counters) & set(TABLE1_COUNTERS)
    print("overlap with the paper's Table I: "
          f"{sorted(preset(c).short_name for c in overlap)}")
    assert 3 <= len(selection.counters) <= 7
    assert selection.mean_vif < 10.0
    assert selection.adjusted_r2 > 0.4
