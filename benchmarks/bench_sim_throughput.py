"""Simulator throughput: vectorized replay vs the generic recursive engine.

Measures uncontrolled application runs — the dataset-build / exhaustive
search / benchmark common case — through both execution engines and
reports per-app and aggregate

* milliseconds per run,
* runs per second,
* region-instances per second,
* the replay/generic speedup,

plus the campaign ``counters`` mode (replay counter synthesis vs the
listener-based collector on the generic engine).

Runs standalone with JSON output (the CI perf-smoke step uploads the
artifact)::

    python benchmarks/bench_sim_throughput.py --apps EP FT --runs 10 \
        --json sim-throughput.json

or under pytest alongside the other benches (one small measurement that
also sanity-checks the replay engine is actually engaged and faster).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro.campaign.engine import _PhaseCounterCollector
from repro.counters.papi import TABLE1_COUNTERS, preset
from repro.execution.simulator import ExecutionSimulator
from repro.hardware.node import ComputeNode
from repro.workloads import registry

#: Default measurement workload: every registry benchmark.
DEFAULT_RUNS = 30
GENERIC_RUNS_DIVISOR = 5  # the slow engine needs fewer repetitions

CANONICAL_COUNTERS = tuple(preset(c).name for c in TABLE1_COUNTERS)


def _time_per_run(run_once, runs: int) -> float:
    run_once(0)  # warm-up: registry caches, memoised timings
    start = time.perf_counter()
    for i in range(runs):
        run_once(i + 1)
    return (time.perf_counter() - start) / runs


def measure_app(app_name: str, runs: int = DEFAULT_RUNS) -> dict:
    """Replay vs generic timings for one benchmark."""
    app = registry.build(app_name)
    simulator = ExecutionSimulator(ComputeNode(0))
    instances = len(simulator.run(app, run_key=("bench", "warm")).instances)
    generic_runs = max(3, runs // GENERIC_RUNS_DIVISOR)

    replay_s = _time_per_run(
        lambda i: simulator.run(app, run_key=("bench", i)), runs
    )
    generic_s = _time_per_run(
        lambda i: simulator.run(app, run_key=("bench", i), fast_path=False),
        generic_runs,
    )

    counters_replay_s = _time_per_run(
        lambda i: simulator.run_phase_counters(
            app, counters=CANONICAL_COUNTERS, run_key=("cbench", i)
        ),
        runs,
    )

    def generic_counters(i):
        collector = _PhaseCounterCollector(CANONICAL_COUNTERS)
        simulator.run(
            app,
            listeners=(collector,),
            collect_counters=True,
            run_key=("cbench", i),
        )

    counters_generic_s = _time_per_run(generic_counters, generic_runs)

    return {
        "app": app_name,
        "instances_per_run": instances,
        "replay_ms_per_run": replay_s * 1e3,
        "generic_ms_per_run": generic_s * 1e3,
        "replay_runs_per_s": 1.0 / replay_s,
        "generic_runs_per_s": 1.0 / generic_s,
        "replay_instances_per_s": instances / replay_s,
        "generic_instances_per_s": instances / generic_s,
        "speedup": generic_s / replay_s,
        "counters_replay_ms_per_run": counters_replay_s * 1e3,
        "counters_generic_ms_per_run": counters_generic_s * 1e3,
        "counters_speedup": counters_generic_s / counters_replay_s,
    }


def run_benchmark(apps: tuple[str, ...] | None = None, runs: int = DEFAULT_RUNS) -> dict:
    """Measure the app set and aggregate the totals."""
    apps = tuple(apps) if apps else registry.benchmark_names()
    results = [measure_app(name, runs) for name in apps]
    replay_total = sum(r["replay_ms_per_run"] for r in results)
    generic_total = sum(r["generic_ms_per_run"] for r in results)
    instances_total = sum(r["instances_per_run"] for r in results)
    aggregate = {
        "apps": len(results),
        "instances_per_workload": instances_total,
        "replay_ms_per_workload": replay_total,
        "generic_ms_per_workload": generic_total,
        "replay_instances_per_s": instances_total / (replay_total / 1e3),
        "generic_instances_per_s": instances_total / (generic_total / 1e3),
        "speedup": generic_total / replay_total,
    }
    return {
        "benchmark": "sim_throughput",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "runs_per_app": runs,
        "results": results,
        "aggregate": aggregate,
    }


def render(report: dict) -> str:
    lines = [
        f"{'app':<12} {'inst':>5} {'generic':>10} {'replay':>10} "
        f"{'speedup':>8} {'inst/s':>10} {'ctr-speedup':>12}",
    ]
    for r in report["results"]:
        lines.append(
            f"{r['app']:<12} {r['instances_per_run']:>5} "
            f"{r['generic_ms_per_run']:>8.2f}ms {r['replay_ms_per_run']:>8.2f}ms "
            f"{r['speedup']:>7.1f}x {r['replay_instances_per_s']:>10.0f} "
            f"{r['counters_speedup']:>11.1f}x"
        )
    a = report["aggregate"]
    lines.append(
        f"{'aggregate':<12} {a['instances_per_workload']:>5} "
        f"{a['generic_ms_per_workload']:>8.2f}ms "
        f"{a['replay_ms_per_workload']:>8.2f}ms "
        f"{a['speedup']:>7.1f}x {a['replay_instances_per_s']:>10.0f}"
    )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# pytest entry point (runs with the bench harness)
# ---------------------------------------------------------------------------

def test_sim_throughput(benchmark):
    report = benchmark.pedantic(
        lambda: run_benchmark(("Lulesh", "Mcb", "FT"), runs=10),
        rounds=1,
        iterations=1,
    )
    print()
    print(render(report))
    # Smoke-level guarantees only — the committed numbers live in the
    # README performance section; CI boxes are too noisy for the full
    # measured factor (the ratio gate against the committed baseline is
    # the real guard).
    assert report["aggregate"]["speedup"] > 2
    for r in report["results"]:
        assert r["replay_ms_per_run"] < r["generic_ms_per_run"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--apps", nargs="*", default=None,
        help="benchmark names (default: the whole registry)",
    )
    parser.add_argument("--runs", type=int, default=DEFAULT_RUNS)
    parser.add_argument("--json", type=Path, default=None,
                        help="write the full report as JSON")
    args = parser.parse_args(argv)
    report = run_benchmark(tuple(args.apps) if args.apps else None, args.runs)
    print(render(report))
    if args.json:
        args.json.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nwrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
