"""Shared, cached prerequisites for the benchmark harness.

Several benches need the same expensive artefacts (the full training
dataset, the deployed model, per-benchmark DTA outcomes).  They are
built once per pytest session and cached here; the underlying
simulations additionally run through a shared
:class:`~repro.campaign.engine.CampaignEngine` backed by an on-disk
:class:`~repro.campaign.store.ResultStore`, so a *second* bench session
reuses the persisted results instead of re-simulating — only the
computation belonging to each table/figure is measured.

The store lives under ``benchmarks/.cache/`` by default; set
``REPRO_BENCH_CACHE_DIR`` to relocate it (tests use a temp dir),
``REPRO_BENCH_CACHE_BACKEND`` to pick the store backend
(``jsonl``/``sqlite``/``segment``; default: an existing legacy JSONL
store is kept, fresh caches use indexed SQLite) or
``REPRO_CAMPAIGN_WORKERS`` to size the worker pool.  Cold-cache
sessions additionally benefit from the simulator's vectorized replay
fast path (see ``benchmarks/bench_sim_throughput.py`` for the measured
per-run speedup).  Trained models are cached in the same store
(content-addressed by dataset digest + hyper-parameters), so warm
sessions rebuild the deployed model without an ADAM step.  Bumping
:data:`~repro.campaign.store.STORE_VERSION` re-keys the cache, so a
store from an older release silently re-simulates (its dead records are
counted by ``repro-campaign status``; delete the file to reclaim the
space).  An entry that *is* recalled but does not match the current
result schema surfaces as a clear
:class:`~repro.errors.CampaignError` naming the store file to delete —
never as a raw ``KeyError`` inside dataset assembly.  The same holds
for quarantined jobs (persisted
:class:`~repro.campaign.resilience.FailureRecord` entries left by an
earlier ``--on-failure quarantine`` run): an artefact build whose plan
touches one fails up front with a CampaignError naming the job and
advising ``retry_failed=True`` / deleting the cache, instead of
crashing inside dataset assembly.

Training configuration mirrors Section V-B: the deployed model trains on
the 14 training benchmarks for ten epochs; the LOOCV study retrains with
five epochs per held-out benchmark.
"""

from __future__ import annotations

import atexit
import functools
import os
from pathlib import Path

from repro import config
from repro.api import ExecutionOptions
from repro.campaign.engine import CampaignEngine
from repro.campaign.store import ResultStore
from repro.hardware.cluster import Cluster
from repro.modeling.dataset import EnergyDataset, build_dataset
from repro.modeling.model_cache import train_network_cached
from repro.modeling.training import TrainedModel, TrainingConfig
from repro.ptf.framework import PeriscopeTuningFramework, TuningOutcome
from repro.ptf.static_tuning import StaticTuningResult, exhaustive_static_search
from repro.workloads import registry

#: Paper hyper-parameters (Section V-B).
LOOCV_EPOCHS = 5
DEPLOYED_EPOCHS = 10

#: Environment override for the on-disk campaign store location.
CACHE_DIR_ENV = "REPRO_BENCH_CACHE_DIR"

#: Environment override for the store backend (jsonl/sqlite/segment).
CACHE_BACKEND_ENV = "REPRO_BENCH_CACHE_BACKEND"

#: Store filename per backend (the segment backend is a directory).
_STORE_NAMES = {
    "jsonl": "campaign-store.jsonl",
    "sqlite": "campaign-store.sqlite",
    "segment": "campaign-store",
}


def cache_dir() -> Path:
    """Where the benchmark harness persists campaign results."""
    return Path(
        os.environ.get(CACHE_DIR_ENV, Path(__file__).parent / ".cache")
    )


def store_path() -> Path:
    """The harness store location, honouring the backend env var.

    Without an explicit ``$REPRO_BENCH_CACHE_BACKEND``, an existing
    legacy JSONL store keeps being used (warm caches stay warm); fresh
    cache directories get the indexed SQLite backend, whose cold-open
    cost stays flat as the store grows into the millions of records.
    """
    backend = os.environ.get(CACHE_BACKEND_ENV)
    if backend is None:
        legacy = cache_dir() / _STORE_NAMES["jsonl"]
        if legacy.exists():
            return legacy
        backend = "sqlite"
    if backend not in _STORE_NAMES:
        raise ValueError(
            f"{CACHE_BACKEND_ENV} must be one of {sorted(_STORE_NAMES)}, "
            f"got {backend!r}"
        )
    return cache_dir() / _STORE_NAMES[backend]


@functools.lru_cache(maxsize=1)
def campaign_engine() -> CampaignEngine:
    """The harness-wide engine: worker pool + persistent result store.

    The store is closed at interpreter exit so index sidecars/handles
    never dangle (`ResultStore` is also a context manager; the harness
    keeps one open per session instead).
    """
    store = ResultStore(
        store_path(), backend=os.environ.get(CACHE_BACKEND_ENV)
    )
    atexit.register(store.close)
    return CampaignEngine(store=store)


@functools.lru_cache(maxsize=1)
def cluster() -> Cluster:
    return Cluster(8, seed=config.DEFAULT_SEED)


@functools.lru_cache(maxsize=1)
def full_dataset() -> EnergyDataset:
    """All 19 benchmarks, full thread sweep (the Figure 5 dataset)."""
    return build_dataset(
        registry.benchmark_names(), cluster=cluster(), engine=campaign_engine()
    )


@functools.lru_cache(maxsize=1)
def training_dataset() -> EnergyDataset:
    """The 14 training benchmarks only (deployed-model training set)."""
    return full_dataset().subset(registry.training_benchmarks())


@functools.lru_cache(maxsize=1)
def deployed_model() -> TrainedModel:
    """The model shipped in the tuning plugin (Section V-B).

    The paper trains a single network for ten epochs; the seed is fixed
    for reproducibility.  Weights are cached in the harness store, so a
    warm session rebuilds the bit-identical model from disk.
    """
    ds = training_dataset()
    return train_network_cached(
        ds.features,
        ds.targets,
        config=TrainingConfig(epochs=DEPLOYED_EPOCHS, seed=0),
        store=campaign_engine().store,
    )


@functools.lru_cache(maxsize=8)
def tuned_outcome(benchmark: str) -> TuningOutcome:
    """Full design-time analysis for one evaluation benchmark."""
    framework = PeriscopeTuningFramework(cluster(), deployed_model())
    return framework.tune(benchmark)


@functools.lru_cache(maxsize=8)
def static_result(benchmark: str) -> StaticTuningResult:
    """Exhaustive static search on the full grid (Table V)."""
    return exhaustive_static_search(
        registry.build(benchmark),
        cluster(),
        options=ExecutionOptions(campaign=campaign_engine()),
    )
