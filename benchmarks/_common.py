"""Shared, cached prerequisites for the benchmark harness.

Several benches need the same expensive artefacts (the full training
dataset, the deployed model, per-benchmark DTA outcomes).  They are
built once per pytest session and cached here, so each bench measures
only the computation belonging to its table/figure.

Training configuration mirrors Section V-B: the deployed model trains on
the 14 training benchmarks for ten epochs; the LOOCV study retrains with
five epochs per held-out benchmark.
"""

from __future__ import annotations

import functools

from repro import config
from repro.hardware.cluster import Cluster
from repro.modeling.dataset import EnergyDataset, build_dataset
from repro.modeling.training import TrainedModel, TrainingConfig, train_network
from repro.ptf.framework import PeriscopeTuningFramework, TuningOutcome
from repro.ptf.static_tuning import StaticTuningResult, exhaustive_static_search
from repro.workloads import registry

#: Paper hyper-parameters (Section V-B).
LOOCV_EPOCHS = 5
DEPLOYED_EPOCHS = 10


@functools.lru_cache(maxsize=1)
def cluster() -> Cluster:
    return Cluster(8, seed=config.DEFAULT_SEED)


@functools.lru_cache(maxsize=1)
def full_dataset() -> EnergyDataset:
    """All 19 benchmarks, full thread sweep (the Figure 5 dataset)."""
    return build_dataset(registry.benchmark_names(), cluster=cluster())


@functools.lru_cache(maxsize=1)
def training_dataset() -> EnergyDataset:
    """The 14 training benchmarks only (deployed-model training set)."""
    return full_dataset().subset(registry.training_benchmarks())


@functools.lru_cache(maxsize=1)
def deployed_model() -> TrainedModel:
    """The model shipped in the tuning plugin (Section V-B).

    The paper trains a single network for ten epochs; the seed is fixed
    for reproducibility.
    """
    ds = training_dataset()
    return train_network(
        ds.features,
        ds.targets,
        config=TrainingConfig(epochs=DEPLOYED_EPOCHS, seed=0),
    )


@functools.lru_cache(maxsize=8)
def tuned_outcome(benchmark: str) -> TuningOutcome:
    """Full design-time analysis for one evaluation benchmark."""
    framework = PeriscopeTuningFramework(cluster(), deployed_model())
    return framework.tune(benchmark)


@functools.lru_cache(maxsize=8)
def static_result(benchmark: str) -> StaticTuningResult:
    """Exhaustive static search on the full grid (Table V)."""
    return exhaustive_static_search(registry.build(benchmark), cluster())
