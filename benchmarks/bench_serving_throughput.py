"""Serving throughput: cross-request batching vs one-sweep-per-request.

A closed-loop load generator drives :class:`repro.serve.service.
TuningService.handle` directly (transport-free — the HTTP shell is
covered by the CI serving smoke) with the workload the serving layer
exists for: per round, a pool of clients tunes the *same* benchmark
grid — a few asking for different objectives, the rest pricing their
own candidate tuning model (TMM) against it.  All of those requests
share one grid key, so the batched service measures the CF x UCF grid
once per round and answers every client from it, while the unbatched
control arm pays one full sweep per distinct request.

Reported per arm: sustained requests/second and p50/p95/p99 response
latency; the aggregate carries the batched/unbatched throughput ratio
(machine-comparable, gated in CI against the committed baseline at
``benchmarks/baselines/serving-throughput.json``), the coalescing
counter, and a bit-equality flag — every batched response must equal
its unbatched twin, which in turn equals offline ``repro.api.tune``.

``--workers N`` switches to the **scaling** benchmark instead: each
client tunes its *own* grid (distinct seeds — no coalescing between
clients, so every request is an independent group) against a fresh
SQLite store, and the same load is replayed at a curve of worker-pool
widths up to N.  The gated metric is ``aggregate.efficiency`` —
parallel speedup normalised by ``min(workers, cores)`` — because the
raw speedup is a property of the machine: on the single-core
containers this repo develops in, a 4-worker pool *cannot* beat one
in-process thread on wall clock (the committed baseline records
exactly that machine context in ``cores``), while on a multi-core CI
runner the same workload shows the real multiple.  Efficiency is
portable across both; broken parallelism drops it on any machine with
cores to spare.  ``parallel_speedup`` is reported ungated alongside.
Bit-equality is gated in both modes.

Runs standalone with JSON output (the CI perf-smoke step uploads the
artifact)::

    python benchmarks/bench_serving_throughput.py --clients 8 --rounds 3 \
        --json serving-throughput.json
    python benchmarks/bench_serving_throughput.py --workers 4 --rounds 2 \
        --json serving-scaling.json

or under pytest alongside the other benches.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

from repro import config
from repro.campaign.store import ResultStore
from repro.execution.simulator import OperatingPoint
from repro.readex.tuning_model import TuningModel
from repro.serve.schema import WIRE_VERSION
from repro.serve.service import TuningService

DEFAULT_CLIENTS = 8
DEFAULT_ROUNDS = 3
DEFAULT_BENCHMARK = "EP"
DEFAULT_STRIDE = 1

OBJECTIVES = ("energy", "edp", "ed2p")


def client_tmm(index: int) -> str:
    """A distinct candidate TMM per client (one tuned region each)."""
    model = TuningModel.from_best_configs(
        DEFAULT_BENCHMARK,
        "phase",
        {
            f"candidate-{index}": OperatingPoint(
                core_freq_ghz=config.CORE_FREQUENCIES_GHZ[
                    index % len(config.CORE_FREQUENCIES_GHZ)
                ],
                uncore_freq_ghz=config.UNCORE_FREQUENCIES_GHZ[
                    index % len(config.UNCORE_FREQUENCIES_GHZ)
                ],
                threads=config.DEFAULT_OPENMP_THREADS,
            )
        },
    )
    return model.to_json()


def round_requests(
    clients: int, round_index: int, benchmark: str, stride: int
) -> list[dict]:
    """One round's request mix: distinct identities, one grid key.

    The first three clients ask for the three objectives; the rest each
    price their own TMM.  ``seed=round_index`` makes every round a
    fresh grid (nothing carries over between rounds), so sustained
    throughput is measured, not a warm cache.
    """
    requests = []
    for client in range(clients):
        payload = {
            "version": WIRE_VERSION,
            "benchmark": benchmark,
            "stride": stride,
            "seed": round_index,
            "objective": OBJECTIVES[client % len(OBJECTIVES)],
        }
        if client >= len(OBJECTIVES):
            payload["tmm"] = client_tmm(client)
        requests.append(payload)
    return requests


async def _drive(service: TuningService, rounds: list[list[dict]]) -> dict:
    latencies: list[float] = []
    responses: list[dict] = []
    start = time.perf_counter()
    for round_payloads in rounds:
        async def timed(payload: dict) -> dict:
            began = time.perf_counter()
            response = await service.handle(payload)
            latencies.append(time.perf_counter() - began)
            return response

        responses.extend(
            await asyncio.gather(*(timed(p) for p in round_payloads))
        )
    elapsed = time.perf_counter() - start
    worker_pool = service.metrics_payload()["worker_pool"]
    await service.aclose()
    ordered = sorted(latencies)

    def quantile(q: float) -> float:
        return ordered[min(len(ordered) - 1, int(q * len(ordered)))]

    return {
        "responses": responses,
        "requests": len(latencies),
        "elapsed_s": elapsed,
        "rps": len(latencies) / elapsed,
        "p50_ms": quantile(0.50) * 1e3,
        "p95_ms": quantile(0.95) * 1e3,
        "p99_ms": quantile(0.99) * 1e3,
        "coalesced": service.batcher.coalesced,
        "groups_fired": service.batcher.groups_fired,
        "worker_pool": worker_pool,
    }


def measure_arm(admission: str, rounds: list[list[dict]]) -> dict:
    service = TuningService(
        admission=admission, max_batch=64, max_wait_s=0.005
    )
    return asyncio.run(_drive(service, rounds))


def run_benchmark(
    clients: int = DEFAULT_CLIENTS,
    rounds: int = DEFAULT_ROUNDS,
    benchmark: str = DEFAULT_BENCHMARK,
    stride: int = DEFAULT_STRIDE,
) -> dict:
    load = [
        round_requests(clients, r, benchmark, stride) for r in range(rounds)
    ]
    # warm-up round outside the measurement: registry caches, memoised
    # region timings (same for both arms)
    measure_arm("batched", [round_requests(clients, 10_000, benchmark, stride)])

    batched = measure_arm("batched", load)
    unbatched = measure_arm("unbatched", load)

    identical = all(
        b.get("result") == u.get("result")
        and b.get("status") == u.get("status") == "ok"
        for b, u in zip(batched.pop("responses"), unbatched.pop("responses"))
    )
    aggregate = {
        "speedup": batched["rps"] / unbatched["rps"],
        "responses_identical": identical,
        "coalesced": batched["coalesced"],
        "coalescing_engaged": batched["coalesced"] > 0,
    }
    return {
        "benchmark": "serving_throughput",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "app": benchmark,
        "clients": clients,
        "rounds": rounds,
        "stride": stride,
        "batched": batched,
        "unbatched": unbatched,
        "aggregate": aggregate,
    }


# ---------------------------------------------------------------------------
# scaling mode (--workers N): independent grids across a worker curve
# ---------------------------------------------------------------------------

def scaling_round_requests(
    clients: int, round_index: int, benchmark: str, stride: int
) -> list[dict]:
    """One scaling round: every client tunes its *own* grid.

    Distinct seeds give distinct grid keys, so nothing coalesces across
    clients — each request is an independent group and the only way to
    go faster is to execute groups concurrently.  This is the workload
    the batching benchmark deliberately excludes, and vice versa.
    """
    return [
        {
            "version": WIRE_VERSION,
            "benchmark": benchmark,
            "stride": stride,
            "seed": 1_000 + round_index * clients + client,
            "objective": OBJECTIVES[client % len(OBJECTIVES)],
        }
        for client in range(clients)
    ]


def measure_scaling_arm(
    workers: int, rounds: list[list[dict]], benchmark: str
) -> dict:
    """One pool width, fresh SQLite store, same load as every arm."""
    with tempfile.TemporaryDirectory(prefix="serving-scaling-") as tmp:
        service = TuningService(
            store=ResultStore(Path(tmp) / "scaling.sqlite"),
            coalesce="grid",
            max_batch=64,
            max_wait_s=0.005,
            workers=workers,
            warm=(benchmark,),
        )
        assert service.pool_fallback is None, service.pool_fallback
        result = asyncio.run(_drive(service, rounds))
    result["workers"] = workers
    return result


def workers_curve(max_workers: int) -> list[int]:
    """1, 2, 4, ... up to (and always including) ``max_workers``."""
    curve = [1]
    while curve[-1] * 2 < max_workers:
        curve.append(curve[-1] * 2)
    if max_workers > 1:
        curve.append(max_workers)
    return curve


def run_scaling_benchmark(
    max_workers: int,
    clients: int = DEFAULT_CLIENTS,
    rounds: int = DEFAULT_ROUNDS,
    benchmark: str = DEFAULT_BENCHMARK,
    stride: int = DEFAULT_STRIDE,
) -> dict:
    load = [
        scaling_round_requests(clients, r, benchmark, stride)
        for r in range(rounds)
    ]
    # warm-up outside the measurement (registry caches, schedule
    # compilation — the per-arm pools additionally warm at fork)
    measure_scaling_arm(
        1, [scaling_round_requests(clients, 10_000, benchmark, stride)],
        benchmark,
    )
    arms = [
        measure_scaling_arm(workers, load, benchmark)
        for workers in workers_curve(max_workers)
    ]
    reference = arms[0].pop("responses")
    identical = all(r.get("status") == "ok" for r in reference)
    for arm in arms[1:]:
        identical = identical and all(
            a.get("result") == r.get("result")
            and a.get("status") == r.get("status") == "ok"
            for a, r in zip(arm.pop("responses"), reference)
        )
    cores = os.cpu_count() or 1
    speedup = arms[-1]["rps"] / arms[0]["rps"]
    aggregate = {
        "max_workers": max_workers,
        "cores": cores,
        # raw machine-bound multiple (reported, not gated) ...
        "parallel_speedup": speedup,
        # ... and the portable gated metric: speedup per usable core.
        "efficiency": speedup / min(max_workers, cores),
        "responses_identical": identical,
    }
    return {
        "benchmark": "serving_scaling",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cores": cores,
        "app": benchmark,
        "clients": clients,
        "rounds": rounds,
        "stride": stride,
        "arms": arms,
        "aggregate": aggregate,
    }


def render_scaling(report: dict) -> str:
    lines = [
        f"{'workers':<8} {'req':>5} {'req/s':>8} {'p50':>9} {'p95':>9} "
        f"{'pids':>5}",
    ]
    for arm in report["arms"]:
        pids = len(arm["worker_pool"].get("groups_per_worker", {}))
        lines.append(
            f"{arm['workers']:<8} {arm['requests']:>5} {arm['rps']:>8.1f} "
            f"{arm['p50_ms']:>7.1f}ms {arm['p95_ms']:>7.1f}ms {pids:>5}"
        )
    a = report["aggregate"]
    lines.append(
        f"{'aggregate':<8} speedup {a['parallel_speedup']:.2f}x on "
        f"{a['cores']} core(s)  efficiency {a['efficiency']:.2f}  "
        f"identical {a['responses_identical']}"
    )
    return "\n".join(lines)


def render(report: dict) -> str:
    lines = [
        f"{'arm':<10} {'req':>5} {'req/s':>8} {'p50':>9} {'p99':>9} "
        f"{'sweeps':>7}",
    ]
    for arm in ("batched", "unbatched"):
        r = report[arm]
        lines.append(
            f"{arm:<10} {r['requests']:>5} {r['rps']:>8.1f} "
            f"{r['p50_ms']:>7.1f}ms {r['p99_ms']:>7.1f}ms "
            f"{r['groups_fired']:>7}"
        )
    a = report["aggregate"]
    lines.append(
        f"{'aggregate':<10} speedup {a['speedup']:.1f}x  "
        f"coalesced {a['coalesced']}  "
        f"identical {a['responses_identical']}"
    )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# pytest entry point (runs with the bench harness)
# ---------------------------------------------------------------------------

def test_serving_throughput(benchmark):
    report = benchmark.pedantic(
        lambda: run_benchmark(clients=6, rounds=2),
        rounds=1,
        iterations=1,
    )
    print()
    print(render(report))
    assert report["aggregate"]["responses_identical"]
    assert report["aggregate"]["coalesced"] > 0
    # Smoke-level floor only; the committed-baseline ratio gate is the
    # real guard against regressions.
    assert report["aggregate"]["speedup"] > 2


def test_serving_scaling(benchmark):
    report = benchmark.pedantic(
        lambda: run_scaling_benchmark(2, clients=4, rounds=1),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_scaling(report))
    # Bit-equality is machine-independent; the speedup is not (a
    # single-core container cannot show one), so it is gated only via
    # the committed-baseline efficiency ratio.
    assert report["aggregate"]["responses_identical"]
    assert report["aggregate"]["efficiency"] > 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=DEFAULT_CLIENTS)
    parser.add_argument("--rounds", type=int, default=DEFAULT_ROUNDS)
    parser.add_argument("--app", default=DEFAULT_BENCHMARK)
    parser.add_argument("--stride", type=int, default=DEFAULT_STRIDE)
    parser.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="run the worker-pool scaling benchmark up to N workers "
             "instead of the batching benchmark",
    )
    parser.add_argument("--json", type=Path, default=None,
                        help="write the full report as JSON")
    args = parser.parse_args(argv)
    if args.workers > 1:
        report = run_scaling_benchmark(
            args.workers, args.clients, args.rounds, args.app, args.stride
        )
        print(render_scaling(report))
    else:
        report = run_benchmark(
            args.clients, args.rounds, args.app, args.stride
        )
        print(render(report))
    if args.json:
        args.json.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nwrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
