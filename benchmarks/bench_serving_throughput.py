"""Serving throughput: cross-request batching vs one-sweep-per-request.

A closed-loop load generator drives :class:`repro.serve.service.
TuningService.handle` directly (transport-free — the HTTP shell is
covered by the CI serving smoke) with the workload the serving layer
exists for: per round, a pool of clients tunes the *same* benchmark
grid — a few asking for different objectives, the rest pricing their
own candidate tuning model (TMM) against it.  All of those requests
share one grid key, so the batched service measures the CF x UCF grid
once per round and answers every client from it, while the unbatched
control arm pays one full sweep per distinct request.

Reported per arm: sustained requests/second and p50/p99 response
latency; the aggregate carries the batched/unbatched throughput ratio
(machine-comparable, gated in CI against the committed baseline at
``benchmarks/baselines/serving-throughput.json``), the coalescing
counter, and a bit-equality flag — every batched response must equal
its unbatched twin, which in turn equals offline ``repro.api.tune``.

Runs standalone with JSON output (the CI perf-smoke step uploads the
artifact)::

    python benchmarks/bench_serving_throughput.py --clients 8 --rounds 3 \
        --json serving-throughput.json

or under pytest alongside the other benches.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import platform
import sys
import time
from pathlib import Path

from repro import config
from repro.execution.simulator import OperatingPoint
from repro.readex.tuning_model import TuningModel
from repro.serve.schema import WIRE_VERSION
from repro.serve.service import TuningService

DEFAULT_CLIENTS = 8
DEFAULT_ROUNDS = 3
DEFAULT_BENCHMARK = "EP"
DEFAULT_STRIDE = 1

OBJECTIVES = ("energy", "edp", "ed2p")


def client_tmm(index: int) -> str:
    """A distinct candidate TMM per client (one tuned region each)."""
    model = TuningModel.from_best_configs(
        DEFAULT_BENCHMARK,
        "phase",
        {
            f"candidate-{index}": OperatingPoint(
                core_freq_ghz=config.CORE_FREQUENCIES_GHZ[
                    index % len(config.CORE_FREQUENCIES_GHZ)
                ],
                uncore_freq_ghz=config.UNCORE_FREQUENCIES_GHZ[
                    index % len(config.UNCORE_FREQUENCIES_GHZ)
                ],
                threads=config.DEFAULT_OPENMP_THREADS,
            )
        },
    )
    return model.to_json()


def round_requests(
    clients: int, round_index: int, benchmark: str, stride: int
) -> list[dict]:
    """One round's request mix: distinct identities, one grid key.

    The first three clients ask for the three objectives; the rest each
    price their own TMM.  ``seed=round_index`` makes every round a
    fresh grid (nothing carries over between rounds), so sustained
    throughput is measured, not a warm cache.
    """
    requests = []
    for client in range(clients):
        payload = {
            "version": WIRE_VERSION,
            "benchmark": benchmark,
            "stride": stride,
            "seed": round_index,
            "objective": OBJECTIVES[client % len(OBJECTIVES)],
        }
        if client >= len(OBJECTIVES):
            payload["tmm"] = client_tmm(client)
        requests.append(payload)
    return requests


async def _drive(service: TuningService, rounds: list[list[dict]]) -> dict:
    latencies: list[float] = []
    responses: list[dict] = []
    start = time.perf_counter()
    for round_payloads in rounds:
        async def timed(payload: dict) -> dict:
            began = time.perf_counter()
            response = await service.handle(payload)
            latencies.append(time.perf_counter() - began)
            return response

        responses.extend(
            await asyncio.gather(*(timed(p) for p in round_payloads))
        )
    elapsed = time.perf_counter() - start
    await service.aclose()
    ordered = sorted(latencies)

    def quantile(q: float) -> float:
        return ordered[min(len(ordered) - 1, int(q * len(ordered)))]

    return {
        "responses": responses,
        "requests": len(latencies),
        "elapsed_s": elapsed,
        "rps": len(latencies) / elapsed,
        "p50_ms": quantile(0.50) * 1e3,
        "p99_ms": quantile(0.99) * 1e3,
        "coalesced": service.batcher.coalesced,
        "groups_fired": service.batcher.groups_fired,
    }


def measure_arm(admission: str, rounds: list[list[dict]]) -> dict:
    service = TuningService(
        admission=admission, max_batch=64, max_wait_s=0.005
    )
    return asyncio.run(_drive(service, rounds))


def run_benchmark(
    clients: int = DEFAULT_CLIENTS,
    rounds: int = DEFAULT_ROUNDS,
    benchmark: str = DEFAULT_BENCHMARK,
    stride: int = DEFAULT_STRIDE,
) -> dict:
    load = [
        round_requests(clients, r, benchmark, stride) for r in range(rounds)
    ]
    # warm-up round outside the measurement: registry caches, memoised
    # region timings (same for both arms)
    measure_arm("batched", [round_requests(clients, 10_000, benchmark, stride)])

    batched = measure_arm("batched", load)
    unbatched = measure_arm("unbatched", load)

    identical = all(
        b.get("result") == u.get("result")
        and b.get("status") == u.get("status") == "ok"
        for b, u in zip(batched.pop("responses"), unbatched.pop("responses"))
    )
    aggregate = {
        "speedup": batched["rps"] / unbatched["rps"],
        "responses_identical": identical,
        "coalesced": batched["coalesced"],
        "coalescing_engaged": batched["coalesced"] > 0,
    }
    return {
        "benchmark": "serving_throughput",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "app": benchmark,
        "clients": clients,
        "rounds": rounds,
        "stride": stride,
        "batched": batched,
        "unbatched": unbatched,
        "aggregate": aggregate,
    }


def render(report: dict) -> str:
    lines = [
        f"{'arm':<10} {'req':>5} {'req/s':>8} {'p50':>9} {'p99':>9} "
        f"{'sweeps':>7}",
    ]
    for arm in ("batched", "unbatched"):
        r = report[arm]
        lines.append(
            f"{arm:<10} {r['requests']:>5} {r['rps']:>8.1f} "
            f"{r['p50_ms']:>7.1f}ms {r['p99_ms']:>7.1f}ms "
            f"{r['groups_fired']:>7}"
        )
    a = report["aggregate"]
    lines.append(
        f"{'aggregate':<10} speedup {a['speedup']:.1f}x  "
        f"coalesced {a['coalesced']}  "
        f"identical {a['responses_identical']}"
    )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# pytest entry point (runs with the bench harness)
# ---------------------------------------------------------------------------

def test_serving_throughput(benchmark):
    report = benchmark.pedantic(
        lambda: run_benchmark(clients=6, rounds=2),
        rounds=1,
        iterations=1,
    )
    print()
    print(render(report))
    assert report["aggregate"]["responses_identical"]
    assert report["aggregate"]["coalesced"] > 0
    # Smoke-level floor only; the committed-baseline ratio gate is the
    # real guard against regressions.
    assert report["aggregate"]["speedup"] > 2


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=DEFAULT_CLIENTS)
    parser.add_argument("--rounds", type=int, default=DEFAULT_ROUNDS)
    parser.add_argument("--app", default=DEFAULT_BENCHMARK)
    parser.add_argument("--stride", type=int, default=DEFAULT_STRIDE)
    parser.add_argument("--json", type=Path, default=None,
                        help="write the full report as JSON")
    args = parser.parse_args(argv)
    report = run_benchmark(args.clients, args.rounds, args.app, args.stride)
    print(render(report))
    if args.json:
        args.json.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nwrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
