"""Whole-paper regeneration: every headline artefact, loop vs fleet.

Regenerates the paper's evaluation artefacts end to end — the Figure
2/3 node-variability series, the Figure 6/7 CF x UCF energy grids, the
Table V best static configurations derived from them, and the Table VI
static-vs-dynamic savings rows — through two execution arms:

* ``loop`` — the per-cell / per-run reference engines: one simulator
  pass per variability cell, one per grid cell, one in-process
  controlled run per savings variant;
* ``fleet`` — the batched fleet replay kernel
  (:mod:`repro.execution.fleet_replay`): all variability cells in one
  fleet, all grids in one :func:`repro.api.sweep_grids` pass, all
  savings variants in one fleet-strategy campaign plan;
* ``pooled`` — the fleet arm's campaign plans executed on a process
  pool with the work-stealing shard schedule
  (``CampaignEngine(max_workers=2, fleet_schedule="steal")``): same
  kernels, shards pulled by free workers instead of running serially.
  On a single-core machine this arm measures the scheduling overhead
  (its gated guarantee is bit-identity plus a not-slower-than-baseline
  ``pooled_speedup`` ratio); with cores to spare it shows the
  parallel multiple.

Every artefact is serialised to canonical JSON and checksummed; the
arms must agree to the bit (``aggregate.artifacts_identical``) and the
fleet arm's wall-clock advantage is the gated ratio
(``aggregate.speedup``).  Standalone::

    python benchmarks/bench_paper_regen.py --json paper-regen.json

The JSON feeds the CI perf-regression gate
(``benchmarks/baselines/paper-regen.json``); the same artefact
checksums, at a reduced scale, are pinned by
``tests/integration/test_golden_paper_regen.py``.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import platform
import sys
import time
from pathlib import Path

if __package__ in (None, ""):  # script execution: make `benchmarks` importable
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.bench_table6_savings import CANNED_STATIC, canned_tuning_model

from repro import api
from repro.analysis.savings import SavingsCase, compare_static_dynamic_many
from repro.analysis.variability import variability_study
from repro.campaign.engine import CampaignEngine

ENGINES = ("loop", "fleet", "pooled")

#: Worker count for the pooled arm.  Two keeps the arm honest on the
#: small CI boxes (any parallel win must come from overlap, not width)
#: while still exercising the steal schedule's shrinking shard sizes.
POOLED_WORKERS = 2


def _pooled_engine() -> CampaignEngine:
    return CampaignEngine(max_workers=POOLED_WORKERS, fleet_schedule="steal")

#: The artefact cast, scaled for a benchmark run: one variability
#: benchmark over both axes, the two paper heatmap cases, savings rows
#: for two apps with structurally different region trees.
VARIABILITY_BENCHMARK = "Lulesh"
VARIABILITY_NODES = (0, 1, 2)
FIG67_CASES = (("Lulesh", 24), ("Mcb", 20))
SAVINGS_APPS = ("Lulesh", "Mcb")
DEFAULT_STRIDE = 1
DEFAULT_RUNS = 3


def _variability_payload(study) -> dict:
    return {
        "benchmark": study.benchmark,
        "axis": study.axis,
        "frequencies": list(study.frequencies),
        "raw_energy_j": {
            str(n): study.raw_energy_j[n].tolist()
            for n in sorted(study.raw_energy_j)
        },
        "normalized_energy": {
            str(n): study.normalized_energy[n].tolist()
            for n in sorted(study.normalized_energy)
        },
        "raw_spread": study.raw_spread,
        "normalized_spread": study.normalized_spread,
    }


def _grid_payload(grid) -> dict:
    return {
        "benchmark": grid.benchmark,
        "threads": grid.threads,
        "core_frequencies": list(grid.core_frequencies),
        "uncore_frequencies": list(grid.uncore_frequencies),
        "node_energy_j": grid.node_energy_j.tolist(),
        "cpu_energy_j": grid.cpu_energy_j.tolist(),
        "time_s": grid.time_s.tolist(),
    }


def _best_config(grid) -> dict:
    """The Table V argmin of one grid: the best static (CF, UCF)."""
    energies = grid.node_energy_j
    flat = int(energies.argmin())
    i, j = divmod(flat, energies.shape[1])
    return {
        "core_freq_ghz": grid.core_frequencies[i],
        "uncore_freq_ghz": grid.uncore_frequencies[j],
        "node_energy_j": float(energies[i, j]),
    }


def _savings_payload(row) -> dict:
    def averages(a):
        return {
            "job_energy_j": a.job_energy_j,
            "cpu_energy_j": a.cpu_energy_j,
            "time_s": a.time_s,
        }

    return {
        "benchmark": row.benchmark,
        "static_config": [
            row.static_config.core_freq_ghz,
            row.static_config.uncore_freq_ghz,
            row.static_config.threads,
        ],
        "default": averages(row.default),
        "static": averages(row.static),
        "dynamic": averages(row.dynamic),
        "config_only": averages(row.config_only),
        "static_cpu_energy_saving": row.static_cpu_energy_saving,
        "dynamic_cpu_energy_saving": row.dynamic_cpu_energy_saving,
        "dynamic_time_saving": row.dynamic_time_saving,
    }


def savings_cases(apps=SAVINGS_APPS) -> list[SavingsCase]:
    return [
        SavingsCase(
            benchmark=name,
            static_config=CANNED_STATIC,
            tuning_model=canned_tuning_model(name),
        )
        for name in apps
    ]


def regenerate_artifacts(
    engine: str,
    *,
    stride: int = DEFAULT_STRIDE,
    runs: int = DEFAULT_RUNS,
) -> dict[str, dict]:
    """Every paper artefact, as canonical-JSON-ready dicts.

    ``engine="loop"`` uses the per-cell/per-run reference paths;
    ``engine="fleet"`` batches each artefact family through the fleet
    replay kernel; ``engine="pooled"`` runs the fleet-shaped campaign
    plans on a :class:`CampaignEngine` process pool with the
    work-stealing shard schedule.  All arms must agree to the bit.
    """
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
    artifacts: dict[str, dict] = {}

    # The variability study has no campaign path — the pooled arm keeps
    # the fleet kernel here; only the campaign-planned artefacts below
    # change execution backend.
    study_engine = "fleet" if engine == "pooled" else engine
    for figure, axis in (("fig2", "core"), ("fig3", "uncore")):
        study = variability_study(
            VARIABILITY_BENCHMARK,
            axis=axis,
            nodes=VARIABILITY_NODES,
            engine=study_engine,
        )
        artifacts[f"{figure}_{axis}_variability"] = _variability_payload(study)

    specs = [
        api.GridSpec(name, threads=threads, stride=stride)
        for name, threads in FIG67_CASES
    ]
    if engine == "pooled":
        grids = api.sweep_grids(
            specs,
            options=api.ExecutionOptions(campaign=_pooled_engine()),
        )
    elif engine == "fleet":
        grids = api.sweep_grids(specs)
    else:
        grids = [
            api.sweep_grid(
                s.benchmark,
                threads=s.threads,
                stride=s.stride,
                options=api.ExecutionOptions(engine="loop"),
            )
            for s in specs
        ]
    for (name, threads), grid in zip(FIG67_CASES, grids):
        key = f"fig67_{name.lower()}_grid"
        artifacts[key] = _grid_payload(grid)
    artifacts["table5_best_configs"] = {
        grid.benchmark: _best_config(grid) for grid in grids
    }

    if engine == "pooled":
        options = api.ExecutionOptions(campaign=_pooled_engine())
    elif engine == "fleet":
        options = api.ExecutionOptions(campaign=CampaignEngine(max_workers=0))
    else:
        options = api.ExecutionOptions()
    rows = compare_static_dynamic_many(
        savings_cases(), runs=runs, options=options
    )
    artifacts["table6_savings"] = {
        row.benchmark: _savings_payload(row) for row in rows
    }
    return artifacts


def checksum(artifact: dict) -> str:
    canonical = json.dumps(artifact, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def run_benchmark(
    stride: int = DEFAULT_STRIDE, runs: int = DEFAULT_RUNS
) -> dict:
    # Warm-up at token scale: registry, memoised region timings and
    # compiled structural schedules, so neither timed arm pays them.
    regenerate_artifacts("fleet", stride=max(stride, 7), runs=1)

    timings, arms = {}, {}
    for engine in ENGINES:
        start = time.perf_counter()
        arms[engine] = regenerate_artifacts(engine, stride=stride, runs=runs)
        timings[engine] = time.perf_counter() - start

    results = []
    for name in arms["fleet"]:
        fleet_sha = checksum(arms["fleet"][name])
        results.append(
            {
                "artifact": name,
                "sha256": fleet_sha,
                "identical": checksum(arms["loop"][name]) == fleet_sha,
                "pooled_identical": (
                    checksum(arms["pooled"][name]) == fleet_sha
                ),
            }
        )
    return {
        "benchmark": "paper_regen",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "stride": stride,
        "runs": runs,
        "results": results,
        "aggregate": {
            "artifacts": len(results),
            "loop_ms": timings["loop"] * 1e3,
            "fleet_ms": timings["fleet"] * 1e3,
            "pooled_ms": timings["pooled"] * 1e3,
            "speedup": timings["loop"] / timings["fleet"],
            "pooled_speedup": timings["loop"] / timings["pooled"],
            "pooled_workers": POOLED_WORKERS,
            "artifacts_identical": all(r["identical"] for r in results),
            "pooled_identical": all(
                r["pooled_identical"] for r in results
            ),
        },
    }


def render(report: dict) -> str:
    lines = [f"{'artifact':<28} {'identical':>10} {'pooled':>8}  sha256"]
    for r in report["results"]:
        lines.append(
            f"{r['artifact']:<28} {str(r['identical']):>10} "
            f"{str(r['pooled_identical']):>8}  {r['sha256'][:16]}"
        )
    a = report["aggregate"]
    lines.append(
        f"\nfull regeneration: loop {a['loop_ms']:.0f}ms, "
        f"fleet {a['fleet_ms']:.0f}ms, speedup {a['speedup']:.1f}x, "
        f"identical {a['artifacts_identical']}"
    )
    lines.append(
        f"pooled fleet ({a['pooled_workers']} workers, steal): "
        f"{a['pooled_ms']:.0f}ms, speedup {a['pooled_speedup']:.1f}x, "
        f"identical {a['pooled_identical']}"
    )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# pytest entry point (run with the bench harness)
# ---------------------------------------------------------------------------

def test_paper_regen_smoke(benchmark):
    """Smoke: the fleet arm regenerates the paper faster, to the bit.

    The committed numbers live in ``baselines/paper-regen.json``; this
    reduced-scale entry guards the bit-equality flag and a conservative
    speedup floor (CI boxes are too noisy for the measured factor).
    """
    report = benchmark.pedantic(
        lambda: run_benchmark(stride=4, runs=2), rounds=1, iterations=1
    )
    print()
    print(render(report))
    assert report["aggregate"]["artifacts_identical"]
    assert report["aggregate"]["pooled_identical"]
    assert report["aggregate"]["speedup"] > 1.5


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--stride", type=int, default=DEFAULT_STRIDE,
                        help="grid-axis thinning stride for the Fig 6/7 "
                             f"heatmaps (default {DEFAULT_STRIDE}: full grids)")
    parser.add_argument("--runs", type=int, default=DEFAULT_RUNS,
                        help="repetitions averaged per Table VI run variant")
    parser.add_argument("--json", type=Path, default=None,
                        help="write the full report as JSON")
    args = parser.parse_args(argv)
    report = run_benchmark(stride=args.stride, runs=args.runs)
    print(render(report))
    if not report["aggregate"]["artifacts_identical"]:
        print("\nARTIFACT MISMATCH: loop and fleet regenerations disagree")
        return 1
    if not report["aggregate"]["pooled_identical"]:
        print("\nARTIFACT MISMATCH: pooled regeneration disagrees")
        return 1
    if args.json:
        args.json.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
