"""Result-store scale: indexed backends vs JSONL at a million records.

Populates one store per backend (jsonl, sqlite, segment) with N
synthetic campaign records and measures the two costs that dominate
store use at scale:

* **cold open** — constructing a ``ResultStore`` over the existing
  store and answering one membership probe.  The JSONL tier parses the
  whole file; the indexed tiers open in (near-)constant time.
* **recall-by-key** — a *fresh* store instance answering K random
  ``get()`` calls, i.e. what a new campaign/serving process pays to
  recall a handful of results.  This is measured with warm OS page
  caches (every store is written then immediately re-read), so the
  ratio isolates store architecture from disk speed: JSONL must still
  scan everything before the first hit, the indexed backends touch an
  index and K records.

Reported speedups are ratios of JSONL cost over backend cost measured
in the same process, so they are comparable across machines and gated
in CI (``store_scale`` kind in ``scripts/check_perf_regression.py``).
CI runs a reduced 10^5-record smoke configuration against its own
baseline; the committed 10^6 baseline documents the at-scale claim.

Runs standalone with JSON output::

    python benchmarks/bench_store_scale.py --records 1000000 \
        --json store-scale.json

or under pytest alongside the other benches (a small configuration that
sanity-checks backend equivalence on the same synthetic load).
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import shutil
import sys
import time
from pathlib import Path

from repro.campaign.store import ResultStore, job_key

#: Default synthetic-store size (the ROADMAP's 10^6-record target).
DEFAULT_RECORDS = 1_000_000

#: Keys recalled per fresh-open recall measurement.
DEFAULT_LOOKUPS = 64

#: Synthetic app axis (keeps summary() breakdowns non-trivial).
APPS = 512

BACKENDS = ("jsonl", "sqlite", "segment")

_STORE_NAMES = {
    "jsonl": "store.jsonl",
    "sqlite": "store.sqlite",
    "segment": "store-segments",
}


def synthetic_item(i: int) -> tuple[str, dict, dict]:
    """One deterministic (key, descriptor, result) triple."""
    descriptor = {"mode": "synthetic", "app": f"app-{i % APPS}", "i": i}
    result = {
        "node_energy_j": 1000.0 + (i % 7919) * 0.125,
        "cpu_energy_j": 600.0 + (i % 6101) * 0.0625,
        "time_s": 1.0 + (i % 997) * 0.001953125,
    }
    return job_key(descriptor), descriptor, result


def populate(path: Path, backend: str, records: int, chunk: int = 50_000) -> float:
    """Bulk-load a fresh store; returns wall seconds."""
    start = time.perf_counter()
    with ResultStore(path, backend=backend) as store:
        for lo in range(0, records, chunk):
            store.put_many(
                [synthetic_item(i) for i in range(lo, min(lo + chunk, records))]
            )
    return time.perf_counter() - start


def store_size_bytes(path: Path) -> int:
    if path.is_dir():
        return sum(p.stat().st_size for p in path.iterdir())
    total = path.stat().st_size
    wal = path.with_name(path.name + "-wal")  # sqlite sidecar files
    if wal.exists():
        total += wal.stat().st_size
    return total


def measure_cold_open(path: Path, probe_key: str, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        with ResultStore(path) as store:
            assert probe_key in store
        best = min(best, time.perf_counter() - start)
    return best


def measure_recall(path: Path, keys: list[str], repeats: int) -> float:
    """Fresh-open + K gets (the cost a new process pays to recall)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        with ResultStore(path) as store:
            for key in keys:
                if store.get(key) is None:
                    raise AssertionError(f"lost record {key} in {path}")
        best = min(best, time.perf_counter() - start)
    return best


def run_benchmark(
    workdir: Path,
    records: int = DEFAULT_RECORDS,
    lookups: int = DEFAULT_LOOKUPS,
    repeats: int = 2,
) -> dict:
    rng = random.Random(20190520)
    sample = [synthetic_item(rng.randrange(records)) for _ in range(lookups)]
    sample_keys = [key for key, _, _ in sample]
    probe_key = sample_keys[0]

    report_backends: dict[str, dict] = {}
    payloads: dict[str, list] = {}
    for backend in BACKENDS:
        path = workdir / _STORE_NAMES[backend]
        if path.exists():
            shutil.rmtree(path) if path.is_dir() else path.unlink()
        populate_s = populate(path, backend, records)
        cold_open_s = measure_cold_open(path, probe_key, repeats)
        recall_s = measure_recall(path, sample_keys, repeats)
        with ResultStore(path) as store:
            payloads[backend] = [store.get(key) for key in sample_keys]
        report_backends[backend] = {
            "populate_s": populate_s,
            "size_bytes": store_size_bytes(path),
            "cold_open_s": cold_open_s,
            "recall_s": recall_s,
            "recall_us_per_key": recall_s / lookups * 1e6,
        }

    expected = [result for _, _, result in sample]
    identical = all(payloads[backend] == expected for backend in BACKENDS)
    jsonl = report_backends["jsonl"]
    for backend in ("sqlite", "segment"):
        entry = report_backends[backend]
        entry["cold_open_speedup"] = jsonl["cold_open_s"] / entry["cold_open_s"]
        entry["recall_speedup"] = jsonl["recall_s"] / entry["recall_s"]

    return {
        "benchmark": "store_scale",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "records": records,
        "lookups": lookups,
        "repeats": repeats,
        "backends": report_backends,
        "payloads_identical": identical,
    }


def render(report: dict) -> str:
    lines = [
        f"{report['records']} records, {report['lookups']} recalls per open",
        f"{'backend':<9} {'size':>9} {'populate':>9} {'cold open':>10} "
        f"{'recall':>10} {'open-speedup':>13} {'recall-speedup':>15}",
    ]
    for backend in BACKENDS:
        entry = report["backends"][backend]
        open_speedup = (
            f"{entry['cold_open_speedup']:>12.1f}x"
            if "cold_open_speedup" in entry
            else f"{'—':>13}"
        )
        recall_speedup = (
            f"{entry['recall_speedup']:>14.1f}x"
            if "recall_speedup" in entry
            else f"{'—':>15}"
        )
        lines.append(
            f"{backend:<9} {entry['size_bytes'] / 1e6:>7.1f}MB "
            f"{entry['populate_s']:>8.2f}s {entry['cold_open_s'] * 1e3:>8.1f}ms "
            f"{entry['recall_s'] * 1e3:>8.1f}ms {open_speedup} {recall_speedup}"
        )
    lines.append(f"payloads identical: {report['payloads_identical']}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# pytest entry point (runs with the bench harness)
# ---------------------------------------------------------------------------

def test_store_scale(benchmark, tmp_path):
    report = benchmark.pedantic(
        lambda: run_benchmark(tmp_path, records=5_000, repeats=1),
        rounds=1,
        iterations=1,
    )
    print()
    print(render(report))
    # Smoke-level guarantees only: at toy sizes the constant factors
    # dominate, so the at-scale ratios are asserted by the committed
    # baseline + CI gate, not here.  Equivalence must hold at any size.
    assert report["payloads_identical"] is True
    for backend in ("sqlite", "segment"):
        assert report["backends"][backend]["recall_speedup"] > 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--records", type=int, default=DEFAULT_RECORDS)
    parser.add_argument("--lookups", type=int, default=DEFAULT_LOOKUPS)
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument(
        "--workdir",
        type=Path,
        default=None,
        help="where the synthetic stores are written (default: a temp dir)",
    )
    parser.add_argument("--json", type=Path, default=None,
                        help="write the full report as JSON")
    args = parser.parse_args(argv)

    import tempfile

    if args.workdir is not None:
        args.workdir.mkdir(parents=True, exist_ok=True)
        report = run_benchmark(
            args.workdir, args.records, args.lookups, args.repeats
        )
    else:
        with tempfile.TemporaryDirectory(prefix="bench-store-scale-") as tmp:
            report = run_benchmark(
                Path(tmp), args.records, args.lookups, args.repeats
            )
    print(render(report))
    if args.json:
        args.json.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nwrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
