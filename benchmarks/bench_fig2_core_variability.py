"""Figure 2: Lulesh node energy vs core frequency across compute nodes.

Paper: Figures 2a/2b — raw node energies differ per compute node
(power variability); normalising each node's series by its energy at the
calibration point (2.0|1.5 GHz) collapses the spread.  Expected shape:
clearly separated raw curves, near-identical normalized curves.
"""

from benchmarks._common import cluster
from repro.analysis.reporting import render_variability
from repro.analysis.variability import variability_study


def _study():
    return variability_study(
        "Lulesh", axis="core", nodes=(0, 1, 2, 3), cluster=cluster()
    )


def test_fig2_core_frequency_variability(benchmark):
    study = benchmark.pedantic(_study, rounds=1, iterations=1)
    print()
    print(render_variability(study))
    # Figure 2a: distinct node curves (relative spread across nodes).
    assert study.raw_spread > 0.005
    # Figure 2b: normalization collapses node-to-node spread.
    assert study.normalized_spread < study.raw_spread / 2
