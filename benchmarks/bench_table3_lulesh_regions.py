"""Table III: optimal configuration per significant region of Lulesh.

Paper: five significant regions, all at high CF (2.4--2.5) and UCF 2.0,
24 threads except ApplyMaterialPropertiesForElems at 20.  Expected
shape: five regions detected; compute-bound configurations (high CF,
low-to-mid UCF); ApplyMaterialPropertiesForElems at fewer threads than
the rest.
"""

from benchmarks._common import tuned_outcome
from repro.analysis.reporting import render_region_configs

PAPER_REGIONS = {
    "IntegrateStressForElems",
    "CalcFBHourglassForceForElems",
    "CalcKinematicsForElems",
    "CalcQForElems",
    "ApplyMaterialPropertiesForElems",
}


def _tune():
    return tuned_outcome("Lulesh")


def test_table3_lulesh_region_configs(benchmark):
    outcome = benchmark.pedantic(_tune, rounds=1, iterations=1)
    configs = outcome.plugin_result.region_configurations
    print()
    print(render_region_configs("Lulesh", configs))
    print("\npaper: all regions 2.4-2.5 CF / 2.0 UCF, 24 threads "
          "(ApplyMaterialPropertiesForElems: 20)")
    assert set(configs) == PAPER_REGIONS
    for cfg in configs.values():
        assert cfg.core_freq_ghz >= 2.0     # compute-bound: high CF
        assert cfg.uncore_freq_ghz <= 2.2   # low-to-mid UCF
    others = [c.threads for r, c in configs.items()
              if r != "ApplyMaterialPropertiesForElems"]
    assert all(t == 24 for t in others)
    assert configs["ApplyMaterialPropertiesForElems"].threads <= 20
