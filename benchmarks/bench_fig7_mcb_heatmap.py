"""Figure 7: Mcbenchmark normalized energy over the CF x UCF grid.

Paper: trend toward high uncore frequency and low core frequency
(memory bound, needs bandwidth); true best 1.6|2.5 GHz at 20 threads,
plugin selection 1.6|2.3 GHz.  Expected shape: best in the
low-CF/high-UCF corner region, opposite of Lulesh.

Standalone, the module benchmarks the Mcb full-grid measurement through
both heatmap engines (``--engine {loop,sweep}``) with a built-in
bit-equality assertion — see ``benchmarks/_grid_sweep.py``::

    python benchmarks/bench_fig7_mcb_heatmap.py --engine sweep
"""

from __future__ import annotations

import sys
from pathlib import Path

if __package__ in (None, ""):  # script execution: make `benchmarks` importable
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks._common import cluster, tuned_outcome
from repro.analysis.heatmap import energy_heatmap
from repro.analysis.reporting import render_heatmap


def _heatmap():
    outcome = tuned_outcome("Mcb")
    result = outcome.plugin_result
    return energy_heatmap(
        "Mcb",
        threads=result.phase_threads,
        cluster=cluster(),
        selected=(
            result.phase_configuration.core_freq_ghz,
            result.phase_configuration.uncore_freq_ghz,
        ),
    )


def test_fig7_mcb_heatmap(benchmark):
    heatmap = benchmark.pedantic(_heatmap, rounds=1, iterations=1)
    print()
    print(render_heatmap(heatmap))
    best_cf, best_ucf = heatmap.best
    print("\npaper: best 1.6|2.5 (20 threads), plugin 1.6|2.3; "
          f"ours: best {best_cf}|{best_ucf} ({heatmap.threads} threads), "
          f"plugin {heatmap.selected}")
    # Memory-bound trend: low CF, high UCF — the mirror image of Fig. 6.
    assert best_cf <= 2.0
    assert best_ucf >= 2.2
    sel_value = heatmap.value_at(*heatmap.selected)
    assert sel_value <= heatmap.best_value * 1.05


def main(argv=None) -> int:
    from benchmarks._grid_sweep import main as grid_sweep_main

    return grid_sweep_main(
        argv, default_apps=("Mcb",), description=__doc__.splitlines()[0]
    )


if __name__ == "__main__":
    sys.exit(main())
