"""Shared loop-vs-sweep measurement core for the Figure 6/7 grids.

``bench_fig6_lulesh_heatmap.py`` and ``bench_fig7_mcb_heatmap.py``
delegate their standalone mode here: the full 14 x 18 CF x UCF grid of
one figure is measured through **both** heatmap engines — the
config-axis sweep replay (:mod:`repro.execution.sweep_replay`) and the
historical one-configuration-at-a-time loop — their normalized grids
are asserted bit-equal, and the speedup is reported.

The JSON report (kind ``grid_sweep``) feeds the CI perf-regression gate.
The committed baseline covers both figures in one report::

    python benchmarks/bench_fig6_lulesh_heatmap.py --apps Lulesh Mcb \
        --json benchmarks/baselines/grid-sweep.json
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.analysis.heatmap import energy_heatmap
from repro.api import ExecutionOptions
from repro.hardware.cluster import Cluster

#: Figure benchmark -> the paper's optimal thread count for it.
FIG_THREADS = {"Lulesh": 24, "Mcb": 20}


def measure_app(app_name: str, primary: str = "sweep") -> dict:
    """Time one figure's full-grid measurement through both engines.

    ``primary`` is warmed up and timed first (the fairest position for
    the engine under scrutiny); both engines always run and their
    normalized grids must agree to the bit.
    """
    threads = FIG_THREADS.get(app_name, 24)

    def grid(engine: str):
        return energy_heatmap(
            app_name, threads=threads, cluster=Cluster(2),
            options=ExecutionOptions(engine=engine),
        )

    order = (primary, "loop" if primary == "sweep" else "sweep")
    grid(primary)  # warm-up: registry, memoised timings, RNG fast path
    timings, maps = {}, {}
    for engine in order:
        start = time.perf_counter()
        maps[engine] = grid(engine)
        timings[engine] = time.perf_counter() - start
    identical = bool(
        np.array_equal(maps["sweep"].normalized, maps["loop"].normalized)
        and maps["sweep"].best == maps["loop"].best
    )
    return {
        "app": app_name,
        "threads": threads,
        "grid_cells": int(maps["sweep"].normalized.size),
        "sweep_ms": timings["sweep"] * 1e3,
        "loop_ms": timings["loop"] * 1e3,
        "speedup": timings["loop"] / timings["sweep"],
        "engines_identical": identical,
        "best": list(maps["sweep"].best),
    }


def run_benchmark(
    apps: tuple[str, ...], primary: str = "sweep"
) -> dict:
    results = [measure_app(name, primary) for name in apps]
    sweep_total = sum(r["sweep_ms"] for r in results)
    loop_total = sum(r["loop_ms"] for r in results)
    return {
        "benchmark": "grid_sweep",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "primary_engine": primary,
        "results": results,
        "aggregate": {
            "apps": len(results),
            "sweep_ms": sweep_total,
            "loop_ms": loop_total,
            "speedup": loop_total / sweep_total,
            "engines_identical": all(r["engines_identical"] for r in results),
        },
    }


def render(report: dict) -> str:
    lines = [
        f"{'app':<10} {'cells':>6} {'loop':>10} {'sweep':>10} {'speedup':>8} "
        f"{'identical':>10}",
    ]
    for r in report["results"]:
        lines.append(
            f"{r['app']:<10} {r['grid_cells']:>6} {r['loop_ms']:>8.1f}ms "
            f"{r['sweep_ms']:>8.1f}ms {r['speedup']:>7.1f}x "
            f"{str(r['engines_identical']):>10}"
        )
    a = report["aggregate"]
    lines.append(
        f"{'aggregate':<10} {'':>6} {a['loop_ms']:>8.1f}ms "
        f"{a['sweep_ms']:>8.1f}ms {a['speedup']:>7.1f}x "
        f"{str(a['engines_identical']):>10}"
    )
    return "\n".join(lines)


def main(argv, *, default_apps: tuple[str, ...], description: str) -> int:
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument(
        "--engine", choices=("loop", "sweep"), default="sweep",
        help="engine warmed up and timed first; both engines always run "
             "and their grids must agree to the bit",
    )
    parser.add_argument(
        "--apps", nargs="*", default=None,
        help=f"benchmark names (default: {' '.join(default_apps)}; "
             f"known threads for {', '.join(FIG_THREADS)})",
    )
    parser.add_argument("--json", type=Path, default=None,
                        help="write the full report as JSON")
    args = parser.parse_args(argv)
    apps = tuple(args.apps) if args.apps else default_apps
    report = run_benchmark(apps, primary=args.engine)
    print(render(report))
    aggregate = report["aggregate"]
    if not aggregate["engines_identical"]:
        print("\nENGINE MISMATCH: sweep and loop grids disagree")
        return 1
    print(f"\ngrid-sweep speedup: {aggregate['speedup']:.1f}x "
          f"(primary engine: {args.engine})")
    if args.json:
        args.json.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.json}")
    return 0
