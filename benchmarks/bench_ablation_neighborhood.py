"""Ablation: value of the neighborhood-verification step.

DESIGN.md calls out the plugin's two-stage frequency search (model
argmin, then <=9 measured neighbors) as a design choice.  This ablation
quantifies it on the evaluation benchmarks: how much ground-truth energy
is lost by (a) trusting the model's pick blindly, vs (b) the verified
pick, vs (c) the true optimum — all measured against the platform
default.  Expected shape: verification recovers part of the model's
prediction error; both stay within a few percent of the true optimum.
"""

import numpy as np

from benchmarks._common import cluster, static_result, tuned_outcome
from repro.execution.simulator import ExecutionSimulator
from repro.util.tables import render_table
from repro.workloads import registry


def _energy_at(benchmark: str, cf: float, ucf: float, threads: int) -> float:
    node = cluster().fresh_node(1)
    node.set_frequencies(cf, ucf)
    return ExecutionSimulator(node).run(
        registry.build(benchmark),
        threads=threads,
        run_key=("ablation", cf, ucf, threads),
    ).node_energy_j


def _ablate():
    rows = []
    for name in registry.TEST_BENCHMARKS:
        outcome = tuned_outcome(name)
        result = outcome.plugin_result
        threads = result.phase_threads
        default = _energy_at(name, 2.5, 3.0, 24)
        raw_pick = _energy_at(name, *result.global_frequencies, threads)
        verified = _energy_at(
            name,
            result.phase_configuration.core_freq_ghz,
            result.phase_configuration.uncore_freq_ghz,
            threads,
        )
        true_best = static_result(name).best_energy_j
        rows.append(
            (
                name,
                1 - raw_pick / default,
                1 - verified / default,
                1 - true_best / default,
            )
        )
    return rows


def test_ablation_neighborhood_verification(benchmark):
    rows = benchmark.pedantic(_ablate, rounds=1, iterations=1)
    print()
    print(
        render_table(
            ["Benchmark", "model pick only", "after verification", "true optimum"],
            [
                [n, f"{a:+.1%}", f"{b:+.1%}", f"{c:+.1%}"]
                for n, a, b, c in rows
            ],
            title="Ablation: energy saving vs default at each search stage",
        )
    )
    raw = np.array([r[1] for r in rows])
    verified = np.array([r[2] for r in rows])
    best = np.array([r[3] for r in rows])
    print(f"\nmean savings: model-only {raw.mean():+.1%}, "
          f"verified {verified.mean():+.1%}, true optimum {best.mean():+.1%}")
    # Verification never hurts on average and the verified pick stays
    # within a few percent of the true optimum.
    assert verified.mean() >= raw.mean() - 1e-9
    assert np.all(best - verified < 0.06)
    assert np.all(verified > 0)  # every benchmark saves energy
