"""Figure 3: Lulesh node energy vs uncore frequency across compute nodes.

Paper: Figures 3a/3b — scenario 2 of Section IV-B: the uncore frequency
sweeps 1.3--3.0 GHz with the core frequency fixed at 2.0 GHz; raw
energies spread across nodes, normalized energies collapse.
"""

from benchmarks._common import cluster
from repro.analysis.reporting import render_variability
from repro.analysis.variability import variability_study


def _study():
    return variability_study(
        "Lulesh", axis="uncore", nodes=(0, 1, 2, 3), cluster=cluster()
    )


def test_fig3_uncore_frequency_variability(benchmark):
    study = benchmark.pedantic(_study, rounds=1, iterations=1)
    print()
    print(render_variability(study))
    assert study.raw_spread > 0.005
    assert study.normalized_spread < study.raw_spread / 2
