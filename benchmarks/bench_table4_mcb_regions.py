"""Table IV: optimal configuration per significant region of Mcbenchmark.

Paper: five significant regions (two functions, three OpenMP parallel
constructs) at low CF (1.6--1.7) and high UCF (2.2--2.3), threads 20/24.
Expected shape: five regions; memory-bound configurations (low CF, high
UCF) — the mirror image of Table III.
"""

from benchmarks._common import tuned_outcome
from repro.analysis.reporting import render_region_configs

PAPER_REGIONS = {
    "setupDT",
    "advPhoton",
    "omp parallel:423",
    "omp parallel:501",
    "omp parallel:642",
}


def _tune():
    return tuned_outcome("Mcb")


def test_table4_mcb_region_configs(benchmark):
    outcome = benchmark.pedantic(_tune, rounds=1, iterations=1)
    configs = outcome.plugin_result.region_configurations
    print()
    print(render_region_configs("Mcb", configs))
    print("\npaper: regions at 1.6-1.7 CF / 2.2-2.3 UCF, 20-24 threads")
    assert set(configs) == PAPER_REGIONS
    for cfg in configs.values():
        assert cfg.core_freq_ghz <= 2.1     # memory bound: low CF
        assert cfg.uncore_freq_ghz >= 2.0   # high UCF
        assert cfg.threads <= 24
